package model

import (
	"fmt"
	"net/netip"
	"sort"

	"mfv/internal/aft"
	"mfv/internal/topology"
)

// Result is the output of a model-based run: the computed dataplanes plus
// the parsing-coverage report.
type Result struct {
	AFTs     map[string]*aft.AFT
	Coverage map[string]Coverage
}

// Run executes the model-based pipeline over a topology: partial parsing,
// then a synchronous control-plane fixed point, then AFT export. Devices in
// dialects the model has no parser for (everything but the EOS-like one)
// fail the parsing phase entirely — as the paper observed with production
// configurations — and produce empty dataplanes.
func Run(topo *topology.Topology) (*Result, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	res := &Result{AFTs: map[string]*aft.AFT{}, Coverage: map[string]Coverage{}}
	devs := map[string]*devConfig{}
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if n.Vendor != topology.VendorEOS {
			// No parser for this vendor: every line is unrecognized.
			cov := Coverage{Device: n.Name}
			for num, line := range nonCommentLines(n.Config) {
				cov.TotalLines++
				cov.Unrecognized = append(cov.Unrecognized,
					Warning{Line: num, Text: line, Why: "no parser for vendor " + string(n.Vendor)})
			}
			res.Coverage[n.Name] = cov
			devs[n.Name] = &devConfig{name: n.Name, interfaces: map[string]*mIface{}}
			continue
		}
		dev, cov := parseDevice(n.Name, n.Config)
		devs[n.Name] = dev
		res.Coverage[n.Name] = cov
	}

	c := newComputation(topo, devs)
	c.run()
	for name := range devs {
		res.AFTs[name] = c.export(name)
	}
	return res, nil
}

func nonCommentLines(src string) map[int]string {
	out := map[int]string{}
	num := 0
	for _, raw := range splitLines(src) {
		num++
		t := trimSpace(raw)
		if t == "" || t[0] == '!' || t[0] == '#' {
			continue
		}
		out[num] = t
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	return append(out, cur)
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t' || s[start] == '\r') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}

// mRoute is one model RIB entry.
type mRoute struct {
	prefix  netip.Prefix
	proto   string // "connected", "local", "static", "isis", "bgp"
	metric  uint32
	nextHop netip.Addr // invalid for connected/local
	egress  string     // interface for connected/local/isis
	drop    bool
	receive bool
	// BGP arbitration fields.
	asPathLen int
	fromIBGP  bool
}

type computation struct {
	topo *topology.Topology
	devs map[string]*devConfig
	// ribs[device][prefix] = chosen route (per-protocol arbitration is
	// folded into install order: connected > static > isis > bgp).
	ribs map[string]map[netip.Prefix]*mRoute
	// addrOwner maps addresses to (device, interface).
	addrOwner map[netip.Addr]ownerRef
}

type ownerRef struct {
	dev  string
	intf string
}

func newComputation(topo *topology.Topology, devs map[string]*devConfig) *computation {
	c := &computation{
		topo:      topo,
		devs:      devs,
		ribs:      map[string]map[netip.Prefix]*mRoute{},
		addrOwner: map[netip.Addr]ownerRef{},
	}
	for name := range devs {
		c.ribs[name] = map[netip.Prefix]*mRoute{}
	}
	return c
}

func (c *computation) devNames() []string {
	out := make([]string, 0, len(c.devs))
	for name := range c.devs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (c *computation) run() {
	c.installConnected()
	c.installStatics()
	c.runISIS()
	c.runBGP()
}

func (c *computation) installConnected() {
	for _, name := range c.devNames() {
		dev := c.devs[name]
		for _, ifName := range dev.order {
			intf := dev.interfaces[ifName]
			if intf.shut || !intf.routed {
				continue
			}
			for _, p := range intf.addrs {
				c.ribs[name][p.Masked()] = &mRoute{
					prefix: p.Masked(), proto: "connected", egress: ifName,
				}
				host := netip.PrefixFrom(p.Addr(), 32)
				c.ribs[name][host] = &mRoute{prefix: host, proto: "local", receive: true}
				c.addrOwner[p.Addr()] = ownerRef{dev: name, intf: ifName}
			}
		}
	}
}

func (c *computation) installStatics() {
	for _, name := range c.devNames() {
		for _, st := range c.devs[name].statics {
			if _, exists := c.ribs[name][st.prefix]; exists {
				continue // connected wins
			}
			c.ribs[name][st.prefix] = &mRoute{
				prefix: st.prefix, proto: "static", nextHop: st.nextHop, drop: st.drop,
			}
		}
	}
}

// isisEdge is a usable adjacency in the model's IGP graph.
type isisEdge struct {
	to      string
	nextHop netip.Addr // neighbor's interface address
	egress  string     // our interface
}

// runISIS builds the model's IGP graph and computes SPF per device. The
// model's auto-inclusion assumption: every routed, addressed, non-loopback
// interface of a device running "router isis" is an IS-IS circuit with
// metric 10. (This is where the Fig. 3 divergence materializes: an address
// dropped by the ordering assumption removes the circuit entirely.)
func (c *computation) runISIS() {
	edges := map[string][]isisEdge{}
	for _, l := range c.topo.Links {
		a, z := l.A, l.Z
		ea, okA := c.circuitAddr(a)
		ez, okZ := c.circuitAddr(z)
		if !okA || !okZ {
			continue
		}
		edges[a.Node] = append(edges[a.Node], isisEdge{to: z.Node, nextHop: ez, egress: a.Interface})
		edges[z.Node] = append(edges[z.Node], isisEdge{to: a.Node, nextHop: ea, egress: z.Interface})
	}
	for _, src := range c.devNames() {
		if !c.devs[src].isis {
			continue
		}
		dist := map[string]uint32{src: 0}
		first := map[string]isisEdge{}
		visited := map[string]bool{}
		for {
			cur, ok := minUnvisited(dist, visited)
			if !ok {
				break
			}
			visited[cur] = true
			for _, e := range edges[cur] {
				if !c.devs[e.to].isis {
					continue
				}
				nd := dist[cur] + 10
				if old, seen := dist[e.to]; !seen || nd < old {
					dist[e.to] = nd
					if cur == src {
						first[e.to] = e
					} else {
						first[e.to] = first[cur]
					}
				}
			}
		}
		for dst, d := range dist {
			if dst == src {
				continue
			}
			fe := first[dst]
			for _, ifName := range c.devs[dst].order {
				intf := c.devs[dst].interfaces[ifName]
				if intf.shut || !intf.routed {
					continue
				}
				for _, p := range intf.addrs {
					masked := p.Masked()
					if have, exists := c.ribs[src][masked]; exists {
						if have.proto != "isis" || have.metric <= d {
							continue
						}
					}
					c.ribs[src][masked] = &mRoute{
						prefix: masked, proto: "isis", metric: d,
						nextHop: fe.nextHop, egress: fe.egress,
					}
				}
			}
		}
	}
}

// circuitAddr returns the interface address if the endpoint is a usable
// IS-IS circuit in the model's view.
func (c *computation) circuitAddr(ep topology.Endpoint) (netip.Addr, bool) {
	dev, ok := c.devs[ep.Node]
	if !ok || !dev.isis {
		return netip.Addr{}, false
	}
	intf, ok := dev.interfaces[ep.Interface]
	if !ok || intf.shut || !intf.routed || len(intf.addrs) == 0 {
		return netip.Addr{}, false
	}
	return intf.addrs[0].Addr(), true
}

func minUnvisited(dist map[string]uint32, visited map[string]bool) (string, bool) {
	best, found := "", false
	for n, d := range dist {
		if visited[n] {
			continue
		}
		if !found || d < dist[best] || (d == dist[best] && n < best) {
			best, found = n, true
		}
	}
	return best, found
}

// bgpPath is one candidate in the synchronous BGP fixed point.
type bgpPath struct {
	prefix   netip.Prefix
	asPath   []uint32
	nextHop  netip.Addr
	fromIBGP bool
	local    bool
	fromRID  netip.Addr
}

type bgpSession struct {
	a, b             string // device names
	aAddr, bAddr     netip.Addr
	ibgp             bool
	aNHSelf, bNHSelf bool
}

// runBGP runs a simplified synchronous route exchange to a fixed point.
func (c *computation) runBGP() {
	sessions := c.bgpSessions()
	// locRIB[device][prefix] = best path.
	loc := map[string]map[netip.Prefix]*bgpPath{}
	for _, name := range c.devNames() {
		loc[name] = map[netip.Prefix]*bgpPath{}
		dev := c.devs[name]
		if dev.bgp == nil {
			continue
		}
		for _, p := range dev.bgp.networks {
			loc[name][p] = &bgpPath{prefix: p, local: true}
		}
		for proto := range dev.bgp.redist {
			for _, rt := range c.ribs[name] {
				if rt.proto == proto {
					if _, have := loc[name][rt.prefix]; !have {
						loc[name][rt.prefix] = &bgpPath{prefix: rt.prefix, local: true}
					}
				}
			}
		}
	}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, s := range sessions {
			// a -> b: next-hop-self rewrites to a's session address.
			if c.exchange(loc, s.a, s.b, s.aAddr, s.ibgp, s.aNHSelf) {
				changed = true
			}
			if c.exchange(loc, s.b, s.a, s.bAddr, s.ibgp, s.bNHSelf) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Install winners.
	for _, name := range c.devNames() {
		for prefix, p := range loc[name] {
			if p.local {
				continue
			}
			if have, exists := c.ribs[name][prefix]; exists && have.proto != "bgp" {
				continue // lower admin distance wins
			}
			c.ribs[name][prefix] = &mRoute{
				prefix: prefix, proto: "bgp", nextHop: p.nextHop,
				asPathLen: len(p.asPath), fromIBGP: p.fromIBGP,
			}
		}
	}
}

// bgpSessions derives sessions from configuration. Reference-model
// assumption: a session exists whenever both sides configure each other
// with matching AS numbers — TCP reachability is NOT modeled.
func (c *computation) bgpSessions() []bgpSession {
	var out []bgpSession
	for _, aName := range c.devNames() {
		a := c.devs[aName]
		if a.bgp == nil {
			continue
		}
		for _, nAddr := range a.bgp.order {
			n := a.bgp.neighbors[nAddr]
			owner, ok := c.addrOwner[n.addr]
			if !ok || owner.dev == aName {
				continue
			}
			if owner.dev < aName {
				continue // each pair is derived once, from the smaller name
			}
			b := c.devs[owner.dev]
			if b.bgp == nil || b.bgp.asn != n.remoteAS {
				continue
			}
			// Find b's reciprocal neighbor entry pointing at one of a's
			// addresses.
			var bAddrLocal netip.Addr
			var bNH bool
			recip := false
			for _, bn := range b.bgp.neighbors {
				if o, ok := c.addrOwner[bn.addr]; ok && o.dev == aName && bn.remoteAS == a.bgp.asn {
					recip = true
					bAddrLocal = bn.addr // address on a that b peers with
					bNH = bn.nextHopSelf
					break
				}
			}
			if !recip {
				continue
			}
			out = append(out, bgpSession{
				a: aName, b: owner.dev,
				aAddr: bAddrLocal, bAddr: n.addr,
				ibgp:    a.bgp.asn == b.bgp.asn,
				aNHSelf: n.nextHopSelf, bNHSelf: bNH,
			})
		}
	}
	return out
}

// exchange advertises from's best paths to to; returns true on any change.
// fromAddr is from's session address (the next-hop-self / eBGP next hop).
func (c *computation) exchange(loc map[string]map[netip.Prefix]*bgpPath, from, to string, fromAddr netip.Addr, ibgp, nhSelf bool) bool {
	fromASN := c.devs[from].bgp.asn
	changed := false
	prefixes := make([]netip.Prefix, 0, len(loc[from]))
	for p := range loc[from] {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for _, prefix := range prefixes {
		p := loc[from][prefix]
		// iBGP split horizon.
		if p.fromIBGP && ibgp {
			continue
		}
		adv := &bgpPath{prefix: prefix, fromIBGP: ibgp, fromRID: ridOf(c.devs[from])}
		if ibgp {
			adv.asPath = p.asPath
			adv.nextHop = p.nextHop
			if p.local || nhSelf || !adv.nextHop.IsValid() {
				adv.nextHop = fromAddr
			}
		} else {
			adv.asPath = append([]uint32{fromASN}, p.asPath...)
			adv.nextHop = fromAddr
			// Loop check.
			toASN := c.devs[to].bgp.asn
			looped := false
			for _, as := range adv.asPath {
				if as == toASN {
					looped = true
					break
				}
			}
			if looped {
				continue
			}
		}
		have, exists := loc[to][prefix]
		if !exists || betterModelPath(adv, have) {
			if exists && samePath(adv, have) {
				continue
			}
			loc[to][prefix] = adv
			changed = true
		}
	}
	return changed
}

func ridOf(d *devConfig) netip.Addr {
	if d.bgp != nil && d.bgp.routerID.IsValid() {
		return d.bgp.routerID
	}
	return netip.Addr{}
}

func samePath(a, b *bgpPath) bool {
	if a.nextHop != b.nextHop || a.fromIBGP != b.fromIBGP || len(a.asPath) != len(b.asPath) {
		return false
	}
	for i := range a.asPath {
		if a.asPath[i] != b.asPath[i] {
			return false
		}
	}
	return true
}

// betterModelPath is the model's simplified decision process: local wins,
// shorter AS path, eBGP over iBGP, lower advertising router ID.
func betterModelPath(a, b *bgpPath) bool {
	if b.local {
		return false
	}
	if a.local {
		return true
	}
	if len(a.asPath) != len(b.asPath) {
		return len(a.asPath) < len(b.asPath)
	}
	if a.fromIBGP != b.fromIBGP {
		return !a.fromIBGP
	}
	if a.fromRID != b.fromRID {
		if !b.fromRID.IsValid() {
			return true
		}
		if !a.fromRID.IsValid() {
			return false
		}
		return a.fromRID.Less(b.fromRID)
	}
	return false
}

// export renders a device's model RIB as an AFT.
func (c *computation) export(name string) *aft.AFT {
	b := aft.NewBuilder(name)
	rib := c.ribs[name]
	prefixes := make([]netip.Prefix, 0, len(rib))
	for p := range rib {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr() != prefixes[j].Addr() {
			return prefixes[i].Addr().Less(prefixes[j].Addr())
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	for _, prefix := range prefixes {
		rt := rib[prefix]
		nh, ok := c.resolve(name, rt, 0)
		if !ok {
			continue
		}
		idx := b.AddNextHop(nh)
		b.AddIPv4(prefix, b.AddGroup([]uint64{idx}), rt.proto, rt.metric)
	}
	return b.Build()
}

// resolve maps a model route to a concrete AFT next hop.
func (c *computation) resolve(dev string, rt *mRoute, depth int) (aft.NextHop, bool) {
	if depth > 4 {
		return aft.NextHop{}, false
	}
	switch {
	case rt.receive:
		return aft.NextHop{Receive: true}, true
	case rt.drop:
		return aft.NextHop{Drop: true}, true
	case rt.egress != "":
		nh := aft.NextHop{Interface: rt.egress}
		if rt.nextHop.IsValid() {
			nh.IPAddress = rt.nextHop.String()
		}
		return nh, true
	case rt.nextHop.IsValid():
		// Recursive resolution through the model RIB.
		via, ok := c.lookup(dev, rt.nextHop)
		if !ok {
			return aft.NextHop{}, false
		}
		inner, ok := c.resolve(dev, via, depth+1)
		if !ok {
			return aft.NextHop{}, false
		}
		if via.proto == "connected" {
			inner.IPAddress = rt.nextHop.String()
		}
		if inner.Receive {
			return aft.NextHop{}, false // next hop is ourselves: nonsense
		}
		return inner, true
	default:
		return aft.NextHop{}, false
	}
}

// lookup is a longest-prefix match over the model RIB.
func (c *computation) lookup(dev string, a netip.Addr) (*mRoute, bool) {
	var best *mRoute
	for _, rt := range c.ribs[dev] {
		if rt.prefix.Contains(a) {
			if best == nil || rt.prefix.Bits() > best.prefix.Bits() {
				best = rt
			}
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// CoverageSummary formats per-device coverage like the paper reports it.
func (r *Result) CoverageSummary() string {
	var b []byte
	names := make([]string, 0, len(r.Coverage))
	for n := range r.Coverage {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cov := r.Coverage[n]
		b = append(b, fmt.Sprintf("%-10s total=%3d unrecognized=%3d ignored=%2d\n",
			n, cov.TotalLines, len(cov.Unrecognized), len(cov.Ignored))...)
	}
	return string(b)
}
