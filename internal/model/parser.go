// Package model implements the model-based control-plane verification
// baseline — the role Batfish's parsing layer and Incremental Batfish
// Dataplane (IBDP) play in the paper. It is a deliberately partial,
// independent implementation:
//
//   - the parsing layer recognizes only a whitelist of statements and
//     counts every line it cannot interpret (the paper's coverage
//     experiment, E2, measures exactly this);
//   - the control-plane model applies documented reference-model
//     assumptions, most importantly the interface ordering assumption that
//     an "ip address" is ignored unless the port was already configured as
//     routed ("no switchport" first), and the rejection of the
//     "isis enable <instance>" syntax — the two Fig. 3 issues;
//   - route computation is a synchronous fixed-point over a simplified
//     best-path model rather than a real distributed protocol exchange.
//
// Comparing this package's dataplanes against the emulation pipeline's
// reproduces the paper's model-vs-model-free findings (E3).
package model

import (
	"fmt"
	"net/netip"
	"strings"
)

// Warning is one diagnostic from the partial parser.
type Warning struct {
	Line int
	Text string
	Why  string
}

// Coverage summarizes how much of a config the model understood.
type Coverage struct {
	Device string
	// TotalLines counts effective (non-blank, non-comment) lines.
	TotalLines int
	// Unrecognized lists lines the parsing layer could not interpret.
	Unrecognized []Warning
	// Ignored lists lines that were syntactically known but discarded by a
	// model assumption (e.g. the switchport ordering rule).
	Ignored []Warning
}

// UnrecognizedCount returns the number of unparsed lines.
func (c Coverage) UnrecognizedCount() int { return len(c.Unrecognized) }

// devConfig is the model's (partial) view of one device.
type devConfig struct {
	name       string
	interfaces map[string]*mIface
	order      []string
	isis       bool
	bgp        *mBGP
	statics    []mStatic
}

type mIface struct {
	name    string
	routed  bool
	addrs   []netip.Prefix
	shut    bool
	passive bool
}

type mBGP struct {
	asn       uint32
	routerID  netip.Addr
	networks  []netip.Prefix
	redist    map[string]bool
	neighbors map[netip.Addr]*mNeighbor
	order     []netip.Addr
}

type mNeighbor struct {
	addr         netip.Addr
	remoteAS     uint32
	updateSource string
	nextHopSelf  bool
}

type mStatic struct {
	prefix  netip.Prefix
	nextHop netip.Addr
	drop    bool
}

func (d *devConfig) iface(name string) *mIface {
	if i, ok := d.interfaces[name]; ok {
		return i
	}
	i := &mIface{name: name}
	// Reference-model assumption: loopbacks are born routed; Ethernet ports
	// start as switchports.
	if strings.HasPrefix(name, "Loopback") {
		i.routed = true
		i.passive = true
	}
	d.interfaces[name] = i
	d.order = append(d.order, name)
	return i
}

// parseDevice runs the partial parsing layer over one EOS-dialect config.
func parseDevice(name, src string) (*devConfig, Coverage) {
	dev := &devConfig{name: name, interfaces: map[string]*mIface{}}
	cov := Coverage{Device: name}

	type ctxKind int
	const (
		ctxTop ctxKind = iota
		ctxIface
		ctxISIS
		ctxBGP
		ctxOther // recognized container whose body we skip silently
		ctxUnknown
	)
	ctx := ctxTop
	var curIface *mIface

	lineNum := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		text := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimLeft(text, " \t")
		if trimmed == "" || trimmed[0] == '!' || trimmed[0] == '#' {
			continue
		}
		if idx := strings.Index(trimmed, " !"); idx >= 0 {
			trimmed = strings.TrimRight(trimmed[:idx], " \t")
			if trimmed == "" {
				continue
			}
		}
		cov.TotalLines++
		indent := len(text) - len(trimmed)
		w := strings.Fields(trimmed)
		top := indent == 0

		unrecognized := func(why string) {
			cov.Unrecognized = append(cov.Unrecognized, Warning{Line: lineNum, Text: trimmed, Why: why})
		}
		ignored := func(why string) {
			cov.Ignored = append(cov.Ignored, Warning{Line: lineNum, Text: trimmed, Why: why})
		}

		if top {
			curIface = nil
			switch w[0] {
			case "hostname":
				ctx = ctxTop
			case "interface":
				if len(w) == 2 {
					curIface = dev.iface(w[1])
					ctx = ctxIface
				} else {
					unrecognized("malformed interface")
					ctx = ctxUnknown
				}
			case "router":
				switch {
				case len(w) >= 2 && w[1] == "isis":
					dev.isis = true
					ctx = ctxISIS
				case len(w) == 3 && w[1] == "bgp":
					var asn uint32
					fmt.Sscanf(w[2], "%d", &asn)
					if dev.bgp == nil {
						dev.bgp = &mBGP{asn: asn, redist: map[string]bool{}, neighbors: map[netip.Addr]*mNeighbor{}}
					}
					ctx = ctxBGP
				default:
					// e.g. router traffic-engineering: not in the model.
					unrecognized("unsupported routing process")
					ctx = ctxUnknown
				}
			case "ip":
				ctx = ctxTop
				parseTopIP(dev, &cov, lineNum, trimmed, w, unrecognized)
			case "route-map":
				// Recognized container, contents not modeled: route maps in
				// the baseline pass everything (a known simplification).
				ctx = ctxOther
			case "end", "no":
				ctx = ctxTop
			default:
				// daemon, management, mpls, ntp, service, spanning-tree,
				// snmp-server, username, transceiver, queue-monitor, …
				unrecognized("unsupported top-level statement")
				ctx = ctxUnknown
			}
			continue
		}

		// Indented lines: dispatch on the open context.
		switch ctx {
		case ctxIface:
			parseIfaceLine(curIface, &cov, lineNum, trimmed, w, unrecognized, ignored)
		case ctxISIS:
			switch w[0] {
			case "net", "address-family", "is-type", "log-adjacency-changes":
				// accepted (NET content is not needed by the model's graph)
			case "passive-interface":
				// accepted
			default:
				unrecognized("unsupported isis statement")
			}
		case ctxBGP:
			parseBGPLine(dev.bgp, &cov, lineNum, trimmed, w, unrecognized)
		case ctxOther:
			// body of a recognized-but-unmodeled container: silently skipped
		default:
			unrecognized("statement in unsupported block")
		}
	}
	return dev, cov
}

func parseTopIP(dev *devConfig, cov *Coverage, line int, text string, w []string, unrecognized func(string)) {
	switch {
	case len(w) == 2 && w[1] == "routing":
		// supported
	case len(w) >= 4 && w[1] == "route":
		pfx, err := netip.ParsePrefix(w[2])
		if err != nil {
			unrecognized("bad static route")
			return
		}
		st := mStatic{prefix: pfx.Masked()}
		if w[3] == "Null0" || w[3] == "null0" {
			st.drop = true
		} else if a, err := netip.ParseAddr(w[3]); err == nil {
			st.nextHop = a
		} else {
			// Interface-form statics are not in the model.
			unrecognized("unsupported static route form")
			return
		}
		dev.statics = append(dev.statics, st)
	case len(w) >= 3 && w[1] == "prefix-list":
		// Recognized, not modeled (policies pass-through).
	default:
		unrecognized("unsupported ip statement")
	}
}

func parseIfaceLine(intf *mIface, cov *Coverage, line int, text string, w []string, unrecognized, ignored func(string)) {
	if intf == nil {
		unrecognized("statement outside interface")
		return
	}
	switch {
	case w[0] == "description":
	case len(w) == 2 && w[0] == "no" && w[1] == "switchport":
		intf.routed = true
	case len(w) == 1 && w[0] == "switchport":
		intf.routed = false
	case len(w) == 3 && w[0] == "ip" && w[1] == "address":
		pfx, err := netip.ParsePrefix(w[2])
		if err != nil {
			unrecognized("bad address")
			return
		}
		// THE ordering assumption (Fig. 3 issue #1): an address on a port
		// not yet configured as routed is silently discarded, because the
		// reference model applies interface configuration in order and
		// assumes a switchport cannot hold an address.
		if !intf.routed {
			ignored("ip address before 'no switchport' — dropped by model ordering assumption")
			return
		}
		intf.addrs = append(intf.addrs, pfx)
	case w[0] == "shutdown":
		intf.shut = true
	case w[0] == "no" && len(w) == 2 && w[1] == "shutdown":
		intf.shut = false
	case w[0] == "isis":
		// Fig. 3 issue #2: the reference model does not know this syntax
		// family at all ("isis enable default" reported as invalid).
		unrecognized("invalid syntax: isis interface statement not in model grammar")
	case w[0] == "mpls":
		unrecognized("mpls not supported by model")
	case w[0] == "mtu" || w[0] == "speed" || w[0] == "load-interval":
		// accepted physical knobs
	default:
		unrecognized("unsupported interface statement")
	}
}

func parseBGPLine(b *mBGP, cov *Coverage, line int, text string, w []string, unrecognized func(string)) {
	if b == nil {
		unrecognized("statement outside router bgp")
		return
	}
	switch w[0] {
	case "router-id":
		if len(w) == 2 {
			if a, err := netip.ParseAddr(w[1]); err == nil {
				b.routerID = a
				return
			}
		}
		unrecognized("bad router-id")
	case "neighbor":
		if len(w) < 3 {
			unrecognized("malformed neighbor")
			return
		}
		a, err := netip.ParseAddr(w[1])
		if err != nil {
			unrecognized("bad neighbor address")
			return
		}
		n, ok := b.neighbors[a]
		if !ok {
			n = &mNeighbor{addr: a}
			b.neighbors[a] = n
			b.order = append(b.order, a)
		}
		switch w[2] {
		case "remote-as":
			if len(w) == 4 {
				fmt.Sscanf(w[3], "%d", &n.remoteAS)
				return
			}
			unrecognized("bad remote-as")
		case "update-source":
			if len(w) == 4 {
				n.updateSource = w[3]
				return
			}
			unrecognized("bad update-source")
		case "next-hop-self":
			n.nextHopSelf = true
		case "description", "route-map", "activate":
			// recognized, pass-through in the baseline
		default:
			// send-community, route-reflector-client, ebgp-multihop,
			// maximum-routes: outside the modeled subset.
			unrecognized("unsupported neighbor attribute")
		}
	case "network":
		if len(w) == 2 {
			if p, err := netip.ParsePrefix(w[1]); err == nil {
				b.networks = append(b.networks, p.Masked())
				return
			}
		}
		unrecognized("bad network")
	case "redistribute":
		if len(w) == 2 && (w[1] == "connected" || w[1] == "static") {
			b.redist[w[1]] = true
			return
		}
		unrecognized("unsupported redistribute source")
	case "address-family", "maximum-paths", "bgp", "timers":
		// accepted containers/knobs
	default:
		unrecognized("unsupported bgp statement")
	}
}
