package aft

import (
	"errors"
	"net/netip"
	"testing"

	"mfv/internal/diag"
)

// FuzzUnmarshal throws arbitrary bytes at the AFT JSON ingestion path — the
// payload a hostile gNMI target controls. Properties: ingestion never
// panics, every rejection is a typed *diag.Error, and an accepted AFT
// survives Marshal/Unmarshal with its fingerprint intact.
func FuzzUnmarshal(f *testing.F) {
	b := NewBuilder("r1")
	nh := b.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1", PushedLabels: []uint32{500}})
	g := b.AddGroup([]uint64{nh})
	b.AddIPv4(netip.MustParsePrefix("2.2.2.2/32"), g, "bgp", 20)
	b.AddLabel(500, g, true)
	seed, err := b.Build().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"device":"r1"}`))
	f.Add([]byte(`{"device":"r1","ipv4-unicast":[{"prefix":"2.2.2.2/32","next-hop-group":7}]}`))
	f.Add([]byte(`{"device":"r1","next-hops":[{"index":1,"ip-address":"::1"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Unmarshal(data)
		if err != nil {
			var de *diag.Error
			if !errors.As(err, &de) {
				t.Fatalf("ingestion error is not a *diag.Error: %v", err)
			}
			return
		}
		enc, err := a.Marshal()
		if err != nil {
			t.Fatalf("re-marshaling accepted AFT: %v", err)
		}
		a2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-unmarshaling accepted AFT: %v", err)
		}
		if !a2.Equal(a) || a2.Fingerprint() != a.Fingerprint() {
			t.Fatal("AFT JSON round trip changed the table")
		}
	})
}
