package aft

import (
	"net/netip"
	"strings"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func sampleAFT() *AFT {
	b := NewBuilder("r1")
	nh1 := b.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1"})
	nh2 := b.AddNextHop(NextHop{IPAddress: "10.0.1.1", Interface: "Ethernet2"})
	drop := b.AddNextHop(NextHop{Drop: true})
	g1 := b.AddGroup([]uint64{nh1})
	g2 := b.AddGroup([]uint64{nh1, nh2})
	gd := b.AddGroup([]uint64{drop})
	b.AddIPv4(pfx("192.0.2.0/24"), g1, "isis", 20)
	b.AddIPv4(pfx("10.0.0.0/8"), g2, "ebgp", 0)
	b.AddIPv4(pfx("203.0.113.0/24"), gd, "static", 0)
	b.AddLabel(100, g1, false)
	return b.Build()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder("r1")
	nh1 := b.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1"})
	nh1again := b.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1"})
	if nh1 != nh1again {
		t.Error("identical next hops not deduplicated")
	}
	nh2 := b.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet2"})
	if nh1 == nh2 {
		t.Error("distinct next hops merged")
	}
	g := b.AddGroup([]uint64{nh1, nh2})
	gReordered := b.AddGroup([]uint64{nh2, nh1})
	if g != gReordered {
		t.Error("group dedup not order-insensitive")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := sampleAFT()
	data, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(got) {
		t.Error("round trip changed forwarding semantics")
	}
	if got.Device != "r1" || len(got.IPv4Entries) != 3 || len(got.LabelEntries) != 1 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AFT)
		want   string
	}{
		{"dup nh index", func(a *AFT) { a.NextHops = append(a.NextHops, NextHop{Index: 1}) }, "duplicate next-hop"},
		{"dup group", func(a *AFT) { a.NextHopGroups = append(a.NextHopGroups, NextHopGroup{ID: 1, NextHops: []uint64{1}}) }, "duplicate group"},
		{"empty group", func(a *AFT) { a.NextHopGroups = append(a.NextHopGroups, NextHopGroup{ID: 99}) }, "no next hops"},
		{"missing nh", func(a *AFT) { a.NextHopGroups[0].NextHops = []uint64{42} }, "missing next hop"},
		{"bad prefix", func(a *AFT) { a.IPv4Entries[0].Prefix = "zoo" }, "bad prefix"},
		{"missing group", func(a *AFT) { a.IPv4Entries[0].NextHopGroup = 42 }, "missing group"},
		{"label missing group", func(a *AFT) { a.LabelEntries[0].NextHopGroup = 42 }, "missing group"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := sampleAFT()
			tc.mutate(a)
			err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte(`{`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"device":"r1","ipv4-unicast":[{"prefix":"10.0.0.0/8","next-hop-group":5}],"next-hop-groups":[],"next-hops":[]}`)); err == nil {
		t.Error("dangling group reference accepted")
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := sampleAFT(), sampleAFT()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical AFTs have different fingerprints")
	}
	// A forwarding-relevant change must alter the fingerprint.
	b.IPv4Entries[0].NextHopGroup = 3
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("changed forwarding, same fingerprint")
	}
}

func TestFingerprintIgnoresMetadata(t *testing.T) {
	a, b := sampleAFT(), sampleAFT()
	b.IPv4Entries[0].Metric = 999
	b.IPv4Entries[0].Origin = "other"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("metadata change altered fingerprint")
	}
}

func TestGroupHops(t *testing.T) {
	a := sampleAFT()
	// Find the ECMP entry for 10.0.0.0/8.
	var ecmpGroup uint64
	for _, e := range a.IPv4Entries {
		if e.Prefix == "10.0.0.0/8" {
			ecmpGroup = e.NextHopGroup
		}
	}
	hops := a.GroupHops(ecmpGroup)
	if len(hops) != 2 {
		t.Fatalf("hops = %+v, want 2", hops)
	}
	if a.GroupHops(999) != nil {
		t.Error("GroupHops for missing group returned entries")
	}
}

func TestEqualNil(t *testing.T) {
	var a *AFT
	if !a.Equal(nil) {
		t.Error("nil != nil")
	}
	if a.Equal(sampleAFT()) {
		t.Error("nil == non-nil")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	bld := NewBuilder("r1")
	for i := 0; i < 10000; i++ {
		nh := bld.AddNextHop(NextHop{IPAddress: "10.0.0.1", Interface: "Ethernet1"})
		g := bld.AddGroup([]uint64{nh})
		bld.AddIPv4(netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24), g, "ebgp", 0)
	}
	a := bld.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Fingerprint()
	}
}
