// Package aft models the Abstract Forwarding Table in the shape of the
// OpenConfig AFT data model (network-instance afts): IPv4 unicast entries
// point at next-hop groups, which reference next hops; MPLS label entries
// share the same next-hop-group indirection. The verification pipeline
// consumes only this representation, pulled over the gNMI-like management
// interface — the vendor-agnostic extraction boundary from the paper.
package aft

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"

	"mfv/internal/diag"
	"mfv/internal/intern"
)

// NextHop is one leaf next hop.
type NextHop struct {
	// Index is the device-scoped next-hop id.
	Index uint64 `json:"index"`
	// IPAddress is the adjacent hop address; empty for drop/receive hops.
	IPAddress string `json:"ip-address,omitempty"`
	// Interface is the egress interface.
	Interface string `json:"interface,omitempty"`
	// PushedLabels is the MPLS label stack pushed on egress, outermost
	// first.
	PushedLabels []uint32 `json:"pushed-mpls-label-stack,omitempty"`
	// Drop marks a discard next hop.
	Drop bool `json:"drop,omitempty"`
	// Receive marks delivery to the local control plane (loopbacks and
	// local interface addresses).
	Receive bool `json:"receive,omitempty"`
}

// NextHopGroup is an ECMP group.
type NextHopGroup struct {
	ID       uint64   `json:"id"`
	NextHops []uint64 `json:"next-hops"`
}

// IPv4Entry maps a prefix to a next-hop group.
type IPv4Entry struct {
	Prefix       string `json:"prefix"`
	NextHopGroup uint64 `json:"next-hop-group"`
	// Origin records the installing protocol for inspection ("isis",
	// "ebgp", "connected", …).
	Origin string `json:"origin-protocol,omitempty"`
	// Metric is the winning route's metric, for inspection only.
	Metric uint32 `json:"metric,omitempty"`
}

// LabelEntry maps an incoming MPLS label to a next-hop group.
type LabelEntry struct {
	Label        uint32 `json:"label"`
	NextHopGroup uint64 `json:"next-hop-group"`
	// Pop marks a penultimate/tail pop entry.
	Pop bool `json:"pop,omitempty"`
}

// AFT is one device's abstract forwarding table.
type AFT struct {
	// Device is the hostname the table was extracted from.
	Device        string         `json:"device"`
	IPv4Entries   []IPv4Entry    `json:"ipv4-unicast"`
	LabelEntries  []LabelEntry   `json:"mpls,omitempty"`
	NextHopGroups []NextHopGroup `json:"next-hop-groups"`
	NextHops      []NextHop      `json:"next-hops"`
}

// Builder incrementally assembles an AFT, deduplicating next hops and
// groups.
type Builder struct {
	aft      *AFT
	nhIndex  map[string]uint64
	nhgIndex map[string]uint64
}

// NewBuilder starts an AFT for the named device.
func NewBuilder(device string) *Builder {
	return &Builder{
		aft:      &AFT{Device: device},
		nhIndex:  map[string]uint64{},
		nhgIndex: map[string]uint64{},
	}
}

func nhKey(nh NextHop) string {
	return fmt.Sprintf("%s|%s|%v|%v|%v", nh.IPAddress, nh.Interface, nh.PushedLabels, nh.Drop, nh.Receive)
}

// AddNextHop interns a next hop and returns its index.
func (b *Builder) AddNextHop(nh NextHop) uint64 {
	key := nhKey(nh)
	if idx, ok := b.nhIndex[key]; ok {
		return idx
	}
	// The same adjacent-hop address and interface name recur across every
	// router on a segment; share one canonical copy across all 10k AFTs.
	nh.IPAddress = intern.String(nh.IPAddress)
	nh.Interface = intern.String(nh.Interface)
	nh.Index = uint64(len(b.aft.NextHops) + 1)
	b.aft.NextHops = append(b.aft.NextHops, nh)
	b.nhIndex[key] = nh.Index
	return nh.Index
}

// AddGroup interns an ECMP group over next-hop indices and returns its id.
func (b *Builder) AddGroup(nhIdx []uint64) uint64 {
	sorted := append([]uint64{}, nhIdx...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := fmt.Sprint(sorted)
	if id, ok := b.nhgIndex[key]; ok {
		return id
	}
	id := uint64(len(b.aft.NextHopGroups) + 1)
	b.aft.NextHopGroups = append(b.aft.NextHopGroups, NextHopGroup{ID: id, NextHops: sorted})
	b.nhgIndex[key] = id
	return id
}

// AddIPv4 appends an IPv4 entry.
func (b *Builder) AddIPv4(prefix netip.Prefix, nhg uint64, origin string, metric uint32) {
	b.aft.IPv4Entries = append(b.aft.IPv4Entries, IPv4Entry{
		Prefix:       intern.String(prefix.String()),
		NextHopGroup: nhg,
		Origin:       intern.String(origin),
		Metric:       metric,
	})
}

// AddLabel appends an MPLS entry.
func (b *Builder) AddLabel(label uint32, nhg uint64, pop bool) {
	b.aft.LabelEntries = append(b.aft.LabelEntries, LabelEntry{Label: label, NextHopGroup: nhg, Pop: pop})
}

// Build finalizes the AFT with entries in canonical order. Slices are
// copied down to exact capacity: built AFTs are retained for the life of a
// verification run (10k of them at the scale tier), and append's growth
// slack would otherwise pin up to 2x the needed memory.
func (b *Builder) Build() *AFT {
	sort.Slice(b.aft.IPv4Entries, func(i, j int) bool {
		return b.aft.IPv4Entries[i].Prefix < b.aft.IPv4Entries[j].Prefix
	})
	sort.Slice(b.aft.LabelEntries, func(i, j int) bool {
		return b.aft.LabelEntries[i].Label < b.aft.LabelEntries[j].Label
	})
	b.aft.IPv4Entries = trim(b.aft.IPv4Entries)
	b.aft.LabelEntries = trim(b.aft.LabelEntries)
	b.aft.NextHopGroups = trim(b.aft.NextHopGroups)
	b.aft.NextHops = trim(b.aft.NextHops)
	return b.aft
}

// trim returns s backed by an exact-capacity array, freeing append slack.
func trim[T any](s []T) []T {
	if cap(s) == len(s) {
		return s
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Marshal encodes the AFT as JSON (the gNMI payload format).
func (a *AFT) Marshal() ([]byte, error) { return json.Marshal(a) }

// Unmarshal decodes an AFT from JSON. Failures — malformed JSON or an AFT
// that fails Validate — come back as *diag.Error so ingestion layers can
// attribute them to a device and contain the blast radius.
func Unmarshal(data []byte) (*AFT, error) {
	var a AFT
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, diag.Wrap(err, diag.SevError, "aft", "")
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// Re-canonicalize shared strings: every device's gNMI payload spells the
	// same prefixes and adjacent addresses, and json.Unmarshal allocated a
	// private copy of each.
	for i := range a.IPv4Entries {
		a.IPv4Entries[i].Prefix = intern.String(a.IPv4Entries[i].Prefix)
		a.IPv4Entries[i].Origin = intern.String(a.IPv4Entries[i].Origin)
	}
	for i := range a.NextHops {
		a.NextHops[i].IPAddress = intern.String(a.NextHops[i].IPAddress)
		a.NextHops[i].Interface = intern.String(a.NextHops[i].Interface)
	}
	return &a, nil
}

// Validate checks referential integrity — every entry references an existing
// group, every group references existing next hops — and that every prefix
// and next-hop address is well-formed IPv4. The address checks are the
// ingestion screen for the verification tries, which only model IPv4: a
// hostile or corrupted AFT is rejected here with a structured error instead
// of reaching a forwarding structure. Errors are *diag.Error with source
// "aft" and the device name filled in.
func (a *AFT) Validate() error {
	verr := func(format string, args ...any) error {
		return diag.Newf(diag.SevError, "aft", a.Device, format, args...)
	}
	nhs := map[uint64]bool{}
	for _, nh := range a.NextHops {
		if nhs[nh.Index] {
			return verr("duplicate next-hop index %d", nh.Index)
		}
		nhs[nh.Index] = true
		if nh.IPAddress != "" {
			ip, err := netip.ParseAddr(nh.IPAddress)
			if err != nil {
				return verr("next hop %d: bad address %q", nh.Index, nh.IPAddress)
			}
			if !ip.Is4() && !ip.Is4In6() {
				return verr("next hop %d: non-IPv4 address %q", nh.Index, nh.IPAddress)
			}
		}
	}
	groups := map[uint64]bool{}
	for _, g := range a.NextHopGroups {
		if groups[g.ID] {
			return verr("duplicate group id %d", g.ID)
		}
		groups[g.ID] = true
		if len(g.NextHops) == 0 {
			return verr("group %d has no next hops", g.ID)
		}
		for _, idx := range g.NextHops {
			if !nhs[idx] {
				return verr("group %d references missing next hop %d", g.ID, idx)
			}
		}
	}
	for _, e := range a.IPv4Entries {
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			return verr("bad prefix %q", e.Prefix)
		}
		if !p.Addr().Is4() && !p.Addr().Is4In6() {
			return verr("non-IPv4 prefix %q in ipv4-unicast", e.Prefix)
		}
		if !groups[e.NextHopGroup] {
			return verr("entry %s references missing group %d", e.Prefix, e.NextHopGroup)
		}
	}
	for _, e := range a.LabelEntries {
		if !groups[e.NextHopGroup] {
			return verr("label %d references missing group %d", e.Label, e.NextHopGroup)
		}
	}
	return nil
}

// Group returns the group by id.
func (a *AFT) Group(id uint64) (NextHopGroup, bool) {
	for _, g := range a.NextHopGroups {
		if g.ID == id {
			return g, true
		}
	}
	return NextHopGroup{}, false
}

// NextHop returns the next hop by index.
func (a *AFT) NextHop(idx uint64) (NextHop, bool) {
	for _, nh := range a.NextHops {
		if nh.Index == idx {
			return nh, true
		}
	}
	return NextHop{}, false
}

// GroupHops resolves a group id to its next hops.
func (a *AFT) GroupHops(id uint64) []NextHop {
	g, ok := a.Group(id)
	if !ok {
		return nil
	}
	out := make([]NextHop, 0, len(g.NextHops))
	for _, idx := range g.NextHops {
		if nh, ok := a.NextHop(idx); ok {
			out = append(out, nh)
		}
	}
	return out
}

// Fingerprint returns a deterministic digest of forwarding-relevant state,
// used by convergence detection: two AFTs with equal fingerprints forward
// identically.
func (a *AFT) Fingerprint() string {
	var b []byte
	for _, e := range a.IPv4Entries {
		b = append(b, e.Prefix...)
		for _, nh := range a.GroupHops(e.NextHopGroup) {
			b = append(b, '|')
			b = append(b, nhKey(nh)...)
		}
		b = append(b, '\n')
	}
	for _, e := range a.LabelEntries {
		b = append(b, fmt.Sprintf("L%d", e.Label)...)
		for _, nh := range a.GroupHops(e.NextHopGroup) {
			b = append(b, '|')
			b = append(b, nhKey(nh)...)
		}
		b = append(b, '\n')
	}
	return fmt.Sprintf("%x", fnv64(b))
}

func fnv64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Equal reports whether two AFTs forward identically.
func (a *AFT) Equal(o *AFT) bool {
	if a == nil || o == nil {
		return a == o
	}
	return a.Fingerprint() == o.Fingerprint()
}
