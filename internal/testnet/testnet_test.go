package testnet

import (
	"strings"
	"testing"

	"mfv/internal/config/eos"
	"mfv/internal/config/junoslike"
	"mfv/internal/topology"
)

func TestFig2Shape(t *testing.T) {
	topo := Fig2()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 6 || len(topo.Links) != 5 {
		t.Errorf("nodes=%d links=%d, want 6/5", len(topo.Nodes), len(topo.Links))
	}
	if !topo.Connected() {
		t.Error("Fig2 not connected")
	}
	for _, n := range topo.Nodes {
		total := eos.CountConfigLines(n.Config)
		if total < 62 || total > 82 {
			t.Errorf("%s: %d lines, want 62–82 (paper range)", n.Name, total)
		}
		if _, diags, err := eos.Parse(n.Config); err != nil || len(diags.Unknown) > 0 {
			t.Errorf("%s: config invalid: %v %v", n.Name, err, diags)
		}
	}
}

func TestFig2BuggyRemovesOnlyEBGPSession(t *testing.T) {
	good, bad := Fig2(), Fig2Buggy()
	for i := range good.Nodes {
		g, b := good.Nodes[i], bad.Nodes[i]
		if g.Name == "r2" || g.Name == "r3" {
			if !strings.Contains(g.Config, "neighbor 100.64.23.") {
				t.Errorf("%s: good config lacks eBGP neighbor", g.Name)
			}
			if strings.Contains(b.Config, "neighbor 100.64.23.") {
				t.Errorf("%s: buggy config still has eBGP neighbor", b.Name)
			}
			// Everything else identical line-for-line.
			gl := strings.Split(g.Config, "\n")
			var kept []string
			for _, l := range gl {
				if !strings.Contains(l, "neighbor 100.64.23.") {
					kept = append(kept, l)
				}
			}
			if strings.Join(kept, "\n") != b.Config {
				t.Errorf("%s: buggy config differs beyond the session", g.Name)
			}
			continue
		}
		if g.Config != b.Config {
			t.Errorf("%s: non-border config changed", g.Name)
		}
	}
}

func TestFig2Helpers(t *testing.T) {
	if Fig2ASOf("r1") != 65002 || Fig2ASOf("r4") != 65003 || Fig2ASOf("r6") != 65001 || Fig2ASOf("zz") != 0 {
		t.Error("Fig2ASOf wrong")
	}
	if Fig2Loopback("r3").String() != "2.2.2.3" {
		t.Error("Fig2Loopback wrong")
	}
}

func TestFig3Shape(t *testing.T) {
	topo := Fig3()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 3 || len(topo.Links) != 2 {
		t.Fatalf("nodes=%d links=%d", len(topo.Nodes), len(topo.Links))
	}
	// Every Ethernet block must carry the misordering and the NETs must
	// match the paper's Fig. 3 style.
	for _, n := range topo.Nodes {
		if !strings.Contains(n.Config, "net 49.0001.1010.1040.10") {
			t.Errorf("%s: NET missing:\n%s", n.Name, n.Config)
		}
		lines := strings.Split(n.Config, "\n")
		for i, l := range lines {
			if strings.Contains(l, "no switchport") {
				if i == 0 || !strings.Contains(lines[i-1], "ip address") {
					t.Errorf("%s: switchport misordering not present near line %d", n.Name, i)
				}
			}
		}
		if _, _, err := eos.Parse(n.Config); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestWANShapes(t *testing.T) {
	for _, n := range []int{2, 5, 9, 30} {
		topo := WAN(n, false)
		if err := topo.Validate(); err != nil {
			t.Fatalf("WAN(%d): %v", n, err)
		}
		if len(topo.Nodes) != n {
			t.Errorf("WAN(%d) has %d nodes", n, len(topo.Nodes))
		}
		if !topo.Connected() {
			t.Errorf("WAN(%d) not connected", n)
		}
		for _, node := range topo.Nodes {
			if _, _, err := eos.Parse(node.Config); err != nil {
				t.Errorf("WAN(%d) %s: %v", n, node.Name, err)
			}
		}
	}
}

func TestWANMultiVendor(t *testing.T) {
	topo := WAN(30, true)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	junos := 0
	for _, n := range topo.Nodes {
		if n.Vendor == topology.VendorJunosLike {
			junos++
			if _, err := junoslike.Parse(n.Config); err != nil {
				t.Errorf("%s: junoslike config invalid: %v\n%s", n.Name, err, n.Config)
			}
		}
	}
	if junos == 0 {
		t.Error("multi-vendor WAN has no junoslike nodes")
	}
}

func TestWANInjectionEdge(t *testing.T) {
	topo := WAN(9, false)
	first := topo.Nodes[0]
	if !strings.Contains(first.Config, "neighbor 198.51.100.1 remote-as 64700") {
		t.Errorf("injection edge missing:\n%s", first.Config)
	}
	if !strings.Contains(first.Config, "198.51.100.0/31") {
		t.Error("injection subnet missing")
	}
}

func TestWANPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WAN(1) did not panic")
		}
	}()
	WAN(1, false)
}

func TestBGPMeshFabric(t *testing.T) {
	topo := BGPMeshFabric(topology.MultiRegion(3, 6, topology.VendorEOS), 1)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, n := range topo.Nodes {
		if _, diags, err := eos.Parse(n.Config); err != nil || len(diags.Unknown) > 0 {
			t.Fatalf("%s: config invalid: %v %v", n.Name, err, diags.Unknown)
		}
		hasBGP := strings.Contains(n.Config, "router bgp 65000")
		if want := i < 4; hasBGP != want {
			t.Errorf("%s: bgp config = %v, want %v", n.Name, hasBGP, want)
		}
	}
	first := topo.Nodes[0]
	if !strings.Contains(first.Config, "neighbor 198.51.100.1 remote-as 64700") {
		t.Errorf("injection edge missing:\n%s", first.Config)
	}
	// Mesh peers over loopbacks: g1n1 peers with g1n2..g1n4 (1.1.0.2-4).
	for _, peer := range []string{"1.1.0.2", "1.1.0.3", "1.1.0.4"} {
		if !strings.Contains(first.Config, "neighbor "+peer+" remote-as 65000") {
			t.Errorf("mesh peer %s missing from g1n1", peer)
		}
	}
	// The whole mesh sits inside region 1 — regions stay disconnected.
	for _, n := range topo.Nodes[:4] {
		if !strings.HasPrefix(n.Name, "g1n") {
			t.Errorf("mesh router %s outside the first region", n.Name)
		}
	}
}

// TestBGPMeshFabricTinyRegions pins the mesh clamp: with regions smaller
// than the mesh, peering must shrink to the region rather than span
// disconnected regions.
func TestBGPMeshFabricTinyRegions(t *testing.T) {
	topo := BGPMeshFabric(topology.MultiRegion(4, 3, topology.VendorEOS), 1)
	meshed := 0
	for _, n := range topo.Nodes {
		if strings.Contains(n.Config, "router bgp 65000") {
			meshed++
			if !strings.HasPrefix(n.Name, "g1n") {
				t.Errorf("mesh router %s outside the first region", n.Name)
			}
		}
	}
	if meshed != 3 {
		t.Errorf("mesh size = %d, want 3 (clamped to the region)", meshed)
	}
}
