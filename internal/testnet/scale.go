package testnet

import (
	"fmt"
	"net/netip"

	"mfv/internal/confgen"
	"mfv/internal/topology"
)

// ISISFabric generates an IS-IS configuration for every router of a bare
// topology: loopback 1.1.<i/250>.<i%250>/32 plus per-link /31 transfer
// networks, both derived from global node/link indices so addressing stays
// unique across disconnected regions (up to 62 500 nodes and 65 536 links).
// mgmt selects the management-config level (0–2, see confgen). The topology
// is mutated in place and returned for chaining.
func ISISFabric(topo *topology.Topology, mgmt int) *topology.Topology {
	addrs := map[topology.Endpoint]netip.Prefix{}
	// Pre-bucket link endpoints per node: NodeLinks scans every link, which
	// turns 10k-router generation quadratic.
	eps := make(map[string][]topology.Endpoint, len(topo.Nodes))
	for idx, l := range topo.Links {
		base := netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx & 0xff), 0})
		addrs[l.A] = netip.PrefixFrom(base, 31)
		addrs[l.Z] = netip.PrefixFrom(base.Next(), 31)
		eps[l.A.Node] = append(eps[l.A.Node], l.A)
		eps[l.Z.Node] = append(eps[l.Z.Node], l.Z)
	}
	for i := range topo.Nodes {
		node := &topo.Nodes[i]
		num := i + 1
		spec := confgen.Spec{
			Hostname: node.Name,
			// Two 4-digit system-id groups keep NETs well-formed (and
			// unique) past router 9999.
			NET:        fmt.Sprintf("49.0001.0000.%04d.%04d.00", num/10000, num%10000),
			Management: mgmt,
			Interfaces: []confgen.Iface{{
				Name: "Loopback0",
				Addr: netip.PrefixFrom(ScaleLoopback(i), 32),
				ISIS: true,
			}},
		}
		for _, ep := range eps[node.Name] {
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: ep.Interface, Addr: addrs[ep], ISIS: true,
			})
		}
		node.Config = confgen.EOS(spec)
	}
	return topo
}

// ScaleLoopback returns the loopback address ISISFabric assigns to the
// node at index i (0-based) of the topology's node list.
func ScaleLoopback(i int) netip.Addr {
	num := i + 1
	return netip.AddrFrom4([4]byte{1, 1, byte(num / 250), byte(num % 250)})
}

// MultiRegionFabric returns the region-sharded scale shape ready to run:
// regions disconnected rings of per routers each, every router carrying a
// generated IS-IS configuration with globally unique addressing. This is
// the fixture behind the scale benchmark tier and `topogen -shape regions`.
func MultiRegionFabric(regions, per int) *topology.Topology {
	return ISISFabric(topology.MultiRegion(regions, per, topology.VendorEOS), 1)
}
