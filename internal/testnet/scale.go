package testnet

import (
	"fmt"
	"net/netip"

	"mfv/internal/confgen"
	"mfv/internal/topology"
)

// ISISFabric generates an IS-IS configuration for every router of a bare
// topology: loopback 1.1.<i/250>.<i%250>/32 plus per-link /31 transfer
// networks, both derived from global node/link indices so addressing stays
// unique across disconnected regions (up to 62 500 nodes and 65 536 links).
// mgmt selects the management-config level (0–2, see confgen). The topology
// is mutated in place and returned for chaining.
func ISISFabric(topo *topology.Topology, mgmt int) *topology.Topology {
	return isisFabric(topo, mgmt, 0)
}

// BGPMeshFabric generates the same IS-IS fabric as ISISFabric and overlays
// the WAN-style BGP service on the first min(4, routers) nodes: an iBGP
// full mesh peered over loopbacks (update-source Loopback0, next-hop-self)
// plus the eBGP injection edge on the first router. On a multi-region
// topology the node order is region-major, so with ≥4 routers per region
// the whole mesh sits inside the first region and its blast radius stays
// region-local while the emulation spans every router — the shape behind
// the nightly 1k-router k=2 failure sweep (`topogen -shape regions
// -bgpmesh`). Per-region sizes below 4 shrink the mesh rather than peer
// across disconnected regions.
func BGPMeshFabric(topo *topology.Topology, mgmt int) *topology.Topology {
	return isisFabric(topo, mgmt, 4)
}

func isisFabric(topo *topology.Topology, mgmt, mesh int) *topology.Topology {
	if mesh > len(topo.Nodes) {
		mesh = len(topo.Nodes)
	}
	if region := regionSize(topo); region > 0 && mesh > region {
		mesh = region
	}
	addrs := map[topology.Endpoint]netip.Prefix{}
	// Pre-bucket link endpoints per node: NodeLinks scans every link, which
	// turns 10k-router generation quadratic.
	eps := make(map[string][]topology.Endpoint, len(topo.Nodes))
	for idx, l := range topo.Links {
		base := netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx & 0xff), 0})
		addrs[l.A] = netip.PrefixFrom(base, 31)
		addrs[l.Z] = netip.PrefixFrom(base.Next(), 31)
		eps[l.A.Node] = append(eps[l.A.Node], l.A)
		eps[l.Z.Node] = append(eps[l.Z.Node], l.Z)
	}
	for i := range topo.Nodes {
		node := &topo.Nodes[i]
		num := i + 1
		spec := confgen.Spec{
			Hostname: node.Name,
			// Two 4-digit system-id groups keep NETs well-formed (and
			// unique) past router 9999.
			NET:        fmt.Sprintf("49.0001.0000.%04d.%04d.00", num/10000, num%10000),
			Management: mgmt,
			Interfaces: []confgen.Iface{{
				Name: "Loopback0",
				Addr: netip.PrefixFrom(ScaleLoopback(i), 32),
				ISIS: true,
			}},
		}
		for _, ep := range eps[node.Name] {
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: ep.Interface, Addr: addrs[ep], ISIS: true,
			})
		}
		if i < mesh {
			lo := ScaleLoopback(i)
			spec.BGP = &confgen.BGP{
				ASN:      65000,
				RouterID: lo,
				Networks: []netip.Prefix{netip.PrefixFrom(lo, 32)},
			}
			for j := 0; j < mesh; j++ {
				if j == i {
					continue
				}
				spec.BGP.Neighbors = append(spec.BGP.Neighbors, confgen.Neighbor{
					Addr:         ScaleLoopback(j),
					RemoteAS:     65000,
					UpdateSource: "Loopback0",
					NextHopSelf:  true,
				})
			}
			if i == 0 {
				// Injection edge, addressed like testnet.WAN's.
				spec.Interfaces = append(spec.Interfaces, confgen.Iface{
					Name: "Ethernet99", Addr: netip.MustParsePrefix("198.51.100.0/31"),
				})
				spec.BGP.Neighbors = append(spec.BGP.Neighbors, confgen.Neighbor{
					Addr: netip.MustParseAddr("198.51.100.1"), RemoteAS: 64700,
				})
			}
		}
		node.Config = confgen.EOS(spec)
	}
	return topo
}

// regionSize returns the per-region node count of a topology built by
// topology.MultiRegion (node names g<region>n<index>, region-major order),
// or 0 when the topology is not region-shaped.
func regionSize(topo *topology.Topology) int {
	var g, idx int
	if len(topo.Nodes) == 0 {
		return 0
	}
	if _, err := fmt.Sscanf(topo.Nodes[0].Name, "g%dn%d", &g, &idx); err != nil || g != 1 || idx != 1 {
		return 0
	}
	for i, n := range topo.Nodes[1:] {
		if _, err := fmt.Sscanf(n.Name, "g%dn%d", &g, &idx); err != nil {
			return 0
		}
		if g != 1 {
			return i + 1
		}
	}
	return len(topo.Nodes)
}

// ScaleLoopback returns the loopback address ISISFabric assigns to the
// node at index i (0-based) of the topology's node list.
func ScaleLoopback(i int) netip.Addr {
	num := i + 1
	return netip.AddrFrom4([4]byte{1, 1, byte(num / 250), byte(num % 250)})
}

// MultiRegionFabric returns the region-sharded scale shape ready to run:
// regions disconnected rings of per routers each, every router carrying a
// generated IS-IS configuration with globally unique addressing. This is
// the fixture behind the scale benchmark tier and `topogen -shape regions`.
func MultiRegionFabric(regions, per int) *topology.Topology {
	return ISISFabric(topology.MultiRegion(regions, per, topology.VendorEOS), 1)
}
