// Package testnet builds the paper's evaluation networks: the 6-node
// three-AS network of Fig. 2 (iBGP + eBGP + IS-IS), the 3-node Fig. 3 line
// with the misordered interface configuration, and a parameterized WAN
// replica for the convergence experiment. Tests, examples, and the
// benchmark harness all draw their scenarios from here.
package testnet

import (
	"fmt"
	"net/netip"
	"strings"

	"mfv/internal/confgen"
	"mfv/internal/topology"
)

// Fig2 returns the paper's 6-node test network: three ASes in a chain —
// AS65001 {r5, r6}, AS65002 {r1, r2}, AS65003 {r3, r4} — with IS-IS and
// iBGP inside each AS and eBGP sessions r6–r1 and r2–r3 between them. Every
// router originates its loopback 2.2.2.<n>/32 into BGP. Config sizes land
// in the paper's 62–82 line range.
func Fig2() *topology.Topology {
	topo := &topology.Topology{Name: "fig2"}
	for i := 1; i <= 6; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{
			Name:   fmt.Sprintf("r%d", i),
			Vendor: topology.VendorEOS,
		})
	}
	link := func(a, ai, z, zi string) {
		topo.Links = append(topo.Links, topology.Link{
			A: topology.Endpoint{Node: a, Interface: ai},
			Z: topology.Endpoint{Node: z, Interface: zi},
		})
	}
	// Intra-AS links on Ethernet1; inter-AS links on Ethernet2.
	link("r1", "Ethernet1", "r2", "Ethernet1") // AS65002
	link("r3", "Ethernet1", "r4", "Ethernet1") // AS65003
	link("r5", "Ethernet1", "r6", "Ethernet1") // AS65001
	link("r2", "Ethernet2", "r3", "Ethernet2") // AS65002 <-> AS65003
	link("r6", "Ethernet2", "r1", "Ethernet2") // AS65001 <-> AS65002

	lo := func(i int) netip.Prefix { return netip.MustParsePrefix(fmt.Sprintf("2.2.2.%d/32", i)) }
	loA := func(i int) netip.Addr { return lo(i).Addr() }

	// AS membership and intra-AS /31s.
	asOf := map[int]uint32{1: 65002, 2: 65002, 3: 65003, 4: 65003, 5: 65001, 6: 65001}
	intra := map[int]netip.Prefix{ // Ethernet1 address per router
		1: netip.MustParsePrefix("100.64.12.0/31"), 2: netip.MustParsePrefix("100.64.12.1/31"),
		3: netip.MustParsePrefix("100.64.34.0/31"), 4: netip.MustParsePrefix("100.64.34.1/31"),
		5: netip.MustParsePrefix("100.64.56.0/31"), 6: netip.MustParsePrefix("100.64.56.1/31"),
	}
	inter := map[int]netip.Prefix{ // Ethernet2 address, only on border routers
		2: netip.MustParsePrefix("100.64.23.0/31"), 3: netip.MustParsePrefix("100.64.23.1/31"),
		6: netip.MustParsePrefix("100.64.61.0/31"), 1: netip.MustParsePrefix("100.64.61.1/31"),
	}
	ibgpPeer := map[int]int{1: 2, 2: 1, 3: 4, 4: 3, 5: 6, 6: 5}
	ebgpPeer := map[int]struct {
		addr netip.Addr
		asn  uint32
	}{
		2: {netip.MustParseAddr("100.64.23.1"), 65003},
		3: {netip.MustParseAddr("100.64.23.0"), 65002},
		6: {netip.MustParseAddr("100.64.61.1"), 65002},
		1: {netip.MustParseAddr("100.64.61.0"), 65001},
	}

	for i := 1; i <= 6; i++ {
		spec := confgen.Spec{
			Hostname:      fmt.Sprintf("r%d", i),
			NET:           fmt.Sprintf("49.0001.0000.0000.%04d.00", i),
			Management:    2,
			PolicyPadding: 4,
			MPLSTE:        true,
			TETunnelTo:    loA(ibgpPeer[i]),
			Interfaces: []confgen.Iface{
				{Name: "Loopback0", Addr: lo(i), ISIS: true},
				{Name: "Ethernet1", Addr: intra[i], ISIS: true, MPLS: true},
			},
			BGP: &confgen.BGP{
				ASN:      asOf[i],
				RouterID: loA(i),
				Networks: []netip.Prefix{lo(i)},
				Neighbors: []confgen.Neighbor{{
					Addr:         loA(ibgpPeer[i]),
					RemoteAS:     asOf[i],
					Description:  "iBGP " + fmt.Sprintf("r%d", ibgpPeer[i]),
					UpdateSource: "Loopback0",
					NextHopSelf:  true,
				}},
			},
		}
		if p, ok := inter[i]; ok {
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{Name: "Ethernet2", Addr: p})
			eb := ebgpPeer[i]
			spec.BGP.Neighbors = append(spec.BGP.Neighbors, confgen.Neighbor{
				Addr: eb.addr, RemoteAS: eb.asn, Description: "eBGP", SendCommunity: true,
			})
		}
		node, _ := topo.Node(spec.Hostname)
		node.Config = confgen.EOS(spec)
	}
	return topo
}

// Fig2Buggy returns the Fig. 2 network with the r2–r3 eBGP session removed
// (the "buggy version" from experiment E1): the neighbor statements are
// deleted from both border routers.
func Fig2Buggy() *topology.Topology {
	topo := Fig2()
	for _, name := range []string{"r2", "r3"} {
		node, _ := topo.Node(name)
		var out []string
		for _, line := range strings.Split(node.Config, "\n") {
			if strings.Contains(line, "neighbor 100.64.23.") {
				continue
			}
			out = append(out, line)
		}
		node.Config = strings.Join(out, "\n")
	}
	return topo
}

// Fig2ASOf maps a Fig. 2 router name to its AS number.
func Fig2ASOf(name string) uint32 {
	switch name {
	case "r1", "r2":
		return 65002
	case "r3", "r4":
		return 65003
	case "r5", "r6":
		return 65001
	}
	return 0
}

// Fig2Loopback returns router rN's loopback address.
func Fig2Loopback(name string) netip.Addr {
	return netip.MustParseAddr("2.2.2." + strings.TrimPrefix(name, "r"))
}

// Fig3 returns the paper's 3-node line topology with the Fig. 3
// configuration: IS-IS only, loopbacks 2.2.2.<n>/32, and every Ethernet
// interface configured with "ip address" BEFORE "no switchport" — valid on
// the vendor, dropped by the reference model.
func Fig3() *topology.Topology {
	topo := topology.Line(3, topology.VendorEOS)
	nets := []string{"", "49.0001.1010.1040.1010.00", "49.0001.1010.1040.1020.00", "49.0001.1010.1040.1030.00"}
	transfer := func(i int) netip.Prefix { // /31 between r<i> and r<i+1>
		return netip.MustParsePrefix(fmt.Sprintf("100.64.%d.0/31", i))
	}
	for i := 1; i <= 3; i++ {
		spec := confgen.Spec{
			Hostname: fmt.Sprintf("r%d", i),
			NET:      nets[i],
			Interfaces: []confgen.Iface{
				{Name: "Loopback0", Addr: netip.MustParsePrefix(fmt.Sprintf("2.2.2.%d/32", i)), ISIS: true},
			},
		}
		if i > 1 { // link toward r<i-1> on Ethernet1
			p := transfer(i - 1)
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: "Ethernet1",
				Addr: netip.PrefixFrom(p.Addr().Next(), 31),
				ISIS: true, MisorderSwitchport: true,
			})
		}
		if i < 3 { // link toward r<i+1>
			name := "Ethernet1"
			if i > 1 {
				name = "Ethernet2"
			}
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: name,
				Addr: netip.PrefixFrom(transfer(i).Addr(), 31),
				ISIS: true, MisorderSwitchport: true,
			})
		}
		node, _ := topo.Node(spec.Hostname)
		node.Config = confgen.EOS(spec)
	}
	return topo
}

// WAN returns an n-router grid-ish backbone replica for the convergence
// experiment (E6): IS-IS everywhere, iBGP full mesh among the first
// `borders` routers (route reflectors would be realistic but the paper's
// replica is small), and an eBGP edge on r1 at 198.51.100.1/31 peering AS
// 64700 for route injection. Set vendors to alternate when multiVendor.
func WAN(n int, multiVendor bool) *topology.Topology {
	if n < 2 {
		panic("testnet: WAN needs at least 2 routers")
	}
	topo := topology.Grid(rows(n), cols(n), topology.VendorEOS)
	topo.Name = fmt.Sprintf("wan-%d", n)
	// Trim to exactly n nodes (Grid may produce more).
	topo.Nodes = topo.Nodes[:n]
	var links []topology.Link
	names := map[string]bool{}
	for _, node := range topo.Nodes {
		names[node.Name] = true
	}
	for _, l := range topo.Links {
		if names[l.A.Node] && names[l.Z.Node] {
			links = append(links, l)
		}
	}
	topo.Links = links

	// Address links: per-link /31 from 10.<idx/256>.<idx%256>.0.
	ifaceAddrs := map[topology.Endpoint]netip.Prefix{}
	for idx, l := range topo.Links {
		base := netip.AddrFrom4([4]byte{10, byte(idx >> 8), byte(idx & 0xff), 0})
		ifaceAddrs[l.A] = netip.PrefixFrom(base, 31)
		ifaceAddrs[l.Z] = netip.PrefixFrom(base.Next(), 31)
	}

	mesh := n
	if mesh > 4 {
		mesh = 4 // iBGP mesh among first 4 routers keeps sessions O(n)
	}
	for i := range topo.Nodes {
		node := &topo.Nodes[i]
		if multiVendor && i%5 == 4 {
			// Every fifth router is the other vendor — but only non-mesh,
			// pure-IGP transits, since the junoslike dialect in this repo
			// carries a reduced BGP surface.
			if i >= mesh {
				node.Vendor = topology.VendorJunosLike
			}
		}
		num := i + 1
		loPfx := netip.MustParsePrefix(fmt.Sprintf("3.3.%d.%d/32", num/250, num%250))
		spec := confgen.Spec{
			Hostname:   node.Name,
			NET:        fmt.Sprintf("49.0001.0000.0000.%04d.00", num),
			Management: 1,
			Interfaces: []confgen.Iface{{Name: "Loopback0", Addr: loPfx, ISIS: true}},
		}
		for _, l := range topo.NodeLinks(node.Name) {
			ep := l.A
			if ep.Node != node.Name {
				ep = l.Z
			}
			spec.Interfaces = append(spec.Interfaces, confgen.Iface{
				Name: ep.Interface, Addr: ifaceAddrs[ep], ISIS: true,
			})
		}
		if i < mesh {
			spec.BGP = &confgen.BGP{
				ASN:      65000,
				RouterID: loPfx.Addr(),
				Networks: []netip.Prefix{loPfx},
			}
			for j := 0; j < mesh; j++ {
				if j == i {
					continue
				}
				peerNum := j + 1
				spec.BGP.Neighbors = append(spec.BGP.Neighbors, confgen.Neighbor{
					Addr:         netip.MustParseAddr(fmt.Sprintf("3.3.%d.%d", peerNum/250, peerNum%250)),
					RemoteAS:     65000,
					UpdateSource: "Loopback0",
					NextHopSelf:  true,
				})
			}
			if i == 0 {
				// Injection edge.
				spec.Interfaces = append(spec.Interfaces, confgen.Iface{
					Name: "Ethernet99", Addr: netip.MustParsePrefix("198.51.100.0/31"),
				})
				spec.BGP.Neighbors = append(spec.BGP.Neighbors, confgen.Neighbor{
					Addr: netip.MustParseAddr("198.51.100.1"), RemoteAS: 64700,
				})
			}
		}
		if node.Vendor == topology.VendorJunosLike {
			node.Config = junosFor(spec)
		} else {
			node.Config = confgen.EOS(spec)
		}
	}
	return topo
}

// junosFor renders a reduced junoslike config (IS-IS + interfaces only) for
// multi-vendor WAN transits.
func junosFor(s confgen.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system { host-name %s; }\n", s.Hostname)
	b.WriteString("interfaces {\n")
	for _, intf := range s.Interfaces {
		fmt.Fprintf(&b, "    %s { unit 0 { family inet { address %s; } } }\n", intf.Name, intf.Addr)
	}
	b.WriteString("}\nprotocols {\n    isis {\n")
	fmt.Fprintf(&b, "        net %s;\n", s.NET)
	for _, intf := range s.Interfaces {
		if !intf.ISIS {
			continue
		}
		if strings.HasPrefix(intf.Name, "Loopback") {
			fmt.Fprintf(&b, "        interface %s.0 { passive; }\n", intf.Name)
		} else {
			fmt.Fprintf(&b, "        interface %s.0;\n", intf.Name)
		}
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

func rows(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func cols(n int) int {
	r := rows(n)
	return (n + r - 1) / r
}
