package junoslike

import (
	"reflect"
	"testing"
)

// fuzzSeedConfig exercises the whole dialect: system, interfaces with inet
// units, protocols (isis/bgp/mpls), and routing-options with statics.
const fuzzSeedConfig = `system {
    host-name r1;
}
interfaces {
    lo0 {
        unit 0 {
            family inet {
                address 2.2.2.1/32;
            }
        }
    }
    et-0/0/1 {
        unit 0 {
            family inet {
                address 10.0.0.0/31;
            }
        }
    }
}
protocols {
    isis {
        net 49.0001.1010.1040.1010.00;
        interface et-0/0/1.0;
    }
    bgp {
        group ebgp {
            peer-as 65002;
            neighbor 10.0.0.1;
        }
    }
    mpls {
        interface et-0/0/1.0;
    }
}
routing-options {
    autonomous-system 65001;
    router-id 2.2.2.1;
    static {
        route 9.9.9.0/24 next-hop 10.0.0.1;
    }
}
`

// FuzzParse throws arbitrary text at the brace-structured parser.
// Properties: parsing never panics (configs are hostile input), and an
// accepted parse is deterministic.
func FuzzParse(f *testing.F) {
	f.Add(fuzzSeedConfig)
	f.Add("protocols { bgp { group g { neighbor 10.0.0.1 { } } } }")
	f.Add(`system { host-name "unterminated`)
	f.Add("}{;;/* dangling */ #\n\x00\x7f")
	f.Fuzz(func(t *testing.T, src string) {
		dev, err := Parse(src)
		if err != nil {
			return
		}
		if dev == nil {
			t.Fatal("nil device with nil error")
		}
		dev2, err2 := Parse(src)
		if err2 != nil || !reflect.DeepEqual(dev, dev2) {
			t.Fatalf("parse is not deterministic (err2=%v)", err2)
		}
	})
}
