package junoslike

import (
	"net/netip"
	"strings"
	"testing"
)

const sample = `/* core router */
system {
    host-name core1;
    services { ssh; netconf; }
}
interfaces {
    et-0/0/1 {
        unit 0 { family inet { address 10.0.0.1/31; } }
    }
    et-0/0/2 {
        disable;
        unit 0 { family inet { address 10.0.0.3/31; } }
    }
    lo0 {
        unit 0 { family inet { address 1.1.1.1/32; } }
    }
}
protocols {
    isis {
        net 49.0001.0000.0000.0101.00;
        interface et-0/0/1.0 { metric 25; }
        interface lo0.0 { passive; }
    }
    bgp {
        group ebgp {
            type external;
            neighbor 10.0.0.0 { peer-as 65001; }
        }
        group ibgp {
            type internal;
            local-address 1.1.1.1;
            peer-as 65100;
            next-hop-self;
            neighbor 2.2.2.2;
            neighbor 3.3.3.3 { description "rr peer"; }
        }
    }
    mpls {
        traffic-engineering;
        interface et-0/0/1.0;
    }
}
routing-options {
    autonomous-system 65100;
    router-id 1.1.1.1;
    static {
        route 0.0.0.0/0 next-hop 10.0.0.0;
        route 192.0.2.0/24 discard;
    }
}
# trailing comment
`

func TestParseSample(t *testing.T) {
	dev, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if dev.Hostname != "core1" {
		t.Errorf("Hostname = %q", dev.Hostname)
	}
	e1 := dev.Interface("et-0/0/1")
	if len(e1.Addresses) != 1 || e1.Addresses[0] != netip.MustParsePrefix("10.0.0.1/31") {
		t.Errorf("et-0/0/1 addresses = %v", e1.Addresses)
	}
	if !e1.Routed || !e1.ISISEnabled || e1.ISISMetric != 25 || !e1.MPLSEnabled {
		t.Errorf("et-0/0/1 = %+v", e1)
	}
	if !dev.Interface("et-0/0/2").Shutdown {
		t.Error("disabled interface not shut down")
	}
	lo := dev.Interface("lo0")
	if !lo.ISISPassive || !lo.ISISEnabled {
		t.Errorf("lo0 = %+v", lo)
	}
	if dev.ISIS == nil || dev.ISIS.NET != "49.0001.0000.0000.0101.00" {
		t.Fatalf("ISIS = %+v", dev.ISIS)
	}
	if dev.BGP == nil || dev.BGP.ASN != 65100 || dev.BGP.RouterID != netip.MustParseAddr("1.1.1.1") {
		t.Fatalf("BGP = %+v", dev.BGP)
	}
	ext, ok := dev.BGP.Neighbor(netip.MustParseAddr("10.0.0.0"))
	if !ok || ext.RemoteAS != 65001 {
		t.Errorf("external neighbor = %+v", ext)
	}
	ib, _ := dev.BGP.Neighbor(netip.MustParseAddr("2.2.2.2"))
	if ib == nil || ib.RemoteAS != 65100 || !ib.NextHopSelf || ib.UpdateSource != "lo0" {
		t.Errorf("ibgp neighbor = %+v", ib)
	}
	rr, _ := dev.BGP.Neighbor(netip.MustParseAddr("3.3.3.3"))
	if rr == nil || rr.Description != "rr peer" {
		t.Errorf("rr neighbor = %+v", rr)
	}
	if dev.MPLS == nil || !dev.MPLS.Enabled || !dev.MPLS.TE {
		t.Errorf("MPLS = %+v", dev.MPLS)
	}
	if len(dev.Statics) != 2 || !dev.Statics[1].Drop {
		t.Errorf("Statics = %+v", dev.Statics)
	}
	if len(dev.Management.Services) != 2 {
		t.Errorf("Services = %v", dev.Management.Services)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, cfg, want string
	}{
		{"unbalanced close", "system { host-name x; } }", "unbalanced"},
		{"unterminated block", "system { host-name x;", "end of input"},
		{"unterminated comment", "/* oops", "unterminated comment"},
		{"unterminated string", `system { host-name "x }`, "unterminated string"},
		{"unknown top", "frobnicate { a; }", "unrecognized top-level"},
		{"bad address", "interfaces { e1 { unit 0 { family inet { address nope; } } } }", "bad IPv4 address"},
		{"bad peer-as", "protocols { bgp { group g { neighbor 1.2.3.4 { peer-as x; } } } } routing-options { autonomous-system 1; }", "bad peer-as"},
		{"brace no stmt", "{ a; }", "'{' without a statement"},
		{"bad static", "routing-options { static { route 1.0.0.0/8 teleport; } }", "next-hop or discard"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidationRunsOnIR(t *testing.T) {
	// BGP group neighbor without any peer-as anywhere -> remote-as 0 -> IR
	// validation failure.
	cfg := `routing-options { autonomous-system 65000; }
protocols { bgp { group g { neighbor 10.0.0.1; } } }`
	if _, err := Parse(cfg); err == nil || !strings.Contains(err.Error(), "no remote-as") {
		t.Errorf("Parse = %v, want remote-as validation error", err)
	}
}

func TestBaseInterface(t *testing.T) {
	tests := map[string]string{
		"et-0/0/1.0": "et-0/0/1",
		"lo0.0":      "lo0",
		"ge-1/2/3":   "ge-1/2/3",
	}
	for in, want := range tests {
		if got := baseInterface(in); got != want {
			t.Errorf("baseInterface(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQuotedStrings(t *testing.T) {
	cfg := `system { host-name "edge router 9"; }`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Hostname != "edge router 9" {
		t.Errorf("Hostname = %q", dev.Hostname)
	}
}
