package junoslike

import (
	"net/netip"
	"strings"
	"testing"
)

func TestRSVPAndLDPEnableMPLS(t *testing.T) {
	for _, proto := range []string{"rsvp", "ldp"} {
		cfg := "protocols { " + proto + " { interface all; } }"
		dev, err := Parse(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if dev.MPLS == nil || !dev.MPLS.Enabled {
			t.Errorf("%s did not enable MPLS", proto)
		}
	}
}

func TestPolicyOptionsAccepted(t *testing.T) {
	cfg := `policy-options {
    policy-statement EXPORT-ALL {
        term 1 { from protocol direct; then accept; }
        term 2 { then reject; }
    }
    prefix-list LOOPBACKS { 1.1.1.0/24; }
}`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Management.Lines == 0 {
		t.Error("policy-options not accounted")
	}
}

func TestInterfaceOptionsAccepted(t *testing.T) {
	cfg := `interfaces {
    et-0/0/0 {
        description "to core";
        mtu 9192;
        unit 0 { family inet { address 10.0.0.1/31; } }
    }
}`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dev.Interface("et-0/0/0").Addresses) != 1 {
		t.Error("address lost among accepted options")
	}
}

func TestNonInetFamiliesIgnored(t *testing.T) {
	cfg := `interfaces {
    et-0/0/0 { unit 0 { family iso { address 49.0001.0001.00; } } }
}`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dev.Interface("et-0/0/0").Addresses) != 0 {
		t.Error("non-inet family produced IPv4 addresses")
	}
}

func TestNeighborMultihop(t *testing.T) {
	cfg := `routing-options { autonomous-system 65000; }
protocols { bgp { group g {
    peer-as 65001;
    neighbor 10.0.0.1 { multihop; }
} } }`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := dev.BGP.Neighbor(netip.MustParseAddr("10.0.0.1"))
	if n == nil || n.EBGPMultihop == 0 {
		t.Errorf("multihop not parsed: %+v", n)
	}
}

func TestBadRouterIDAndASN(t *testing.T) {
	if _, err := Parse("routing-options { router-id zoo; }"); err == nil ||
		!strings.Contains(err.Error(), "router-id") {
		t.Errorf("err = %v", err)
	}
	if _, err := Parse("routing-options { autonomous-system banana; }"); err == nil ||
		!strings.Contains(err.Error(), "autonomous-system") {
		t.Errorf("err = %v", err)
	}
}

func TestISISMetricAndUnknownOption(t *testing.T) {
	cfg := `protocols { isis {
    net 49.0001.0000.0000.0001.00;
    interface et-0/0/0.0 { metric 77; }
} }
interfaces { et-0/0/0 { unit 0 { family inet { address 10.0.0.0/31; } } } }`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Interface("et-0/0/0").ISISMetric != 77 {
		t.Error("metric not applied")
	}
	bad := `protocols { isis {
    net 49.0001.0000.0000.0001.00;
    interface et-0/0/0.0 { frobnicate; }
} }`
	if _, err := Parse(bad); err == nil {
		t.Error("unknown isis interface option accepted")
	}
}

func TestCommentsEverywhere(t *testing.T) {
	cfg := `/* header */
system {
    # inline comment
    host-name r1; /* trailing */
}`
	dev, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Hostname != "r1" {
		t.Errorf("Hostname = %q", dev.Hostname)
	}
}
