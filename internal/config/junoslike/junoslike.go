// Package junoslike parses a hierarchical, brace-structured configuration
// dialect (in the style of Junos) into the vendor-independent IR. Together
// with internal/config/eos it lets topologies mix vendors, which the paper
// identifies as essential: vendor-interplay bugs cannot be found with a
// single reference model.
package junoslike

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"mfv/internal/config/ir"
	"mfv/internal/diag"
)

// node is one statement in the configuration tree: a list of words plus
// optional children in braces.
type node struct {
	words    []string
	children []*node
	line     int
}

func (n *node) kw() string {
	if len(n.words) == 0 {
		return ""
	}
	return n.words[0]
}

// arg returns the i-th word after the keyword, or "".
func (n *node) arg(i int) string {
	if i+1 >= len(n.words) {
		return ""
	}
	return n.words[i+1]
}

// child returns the first child whose keyword is kw.
func (n *node) child(kw string) *node {
	for _, c := range n.children {
		if c.kw() == kw {
			return c
		}
	}
	return nil
}

type token struct {
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var out []token
	lineNum := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			lineNum++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("junoslike: line %d: unterminated comment", lineNum)
			}
			lineNum += strings.Count(src[i:i+2+end+2], "\n")
			i += end + 4
		case c == '{' || c == '}' || c == ';':
			out = append(out, token{string(c), lineNum})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("junoslike: line %d: unterminated string", lineNum)
				}
				j++
			}
			if j == len(src) {
				return nil, fmt.Errorf("junoslike: line %d: unterminated string", lineNum)
			}
			out = append(out, token{src[i+1 : j], lineNum})
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\r\n{};#\"", rune(src[j])) {
				j++
			}
			out = append(out, token{src[i:j], lineNum})
			i = j
		}
	}
	return out, nil
}

// parseTree builds the statement tree from tokens.
func parseTree(toks []token) ([]*node, error) {
	pos := 0
	var parseLevel func(depth int) ([]*node, error)
	parseLevel = func(depth int) ([]*node, error) {
		var nodes []*node
		var words []string
		wordLine := 0
		flushLeaf := func() {
			if len(words) > 0 {
				nodes = append(nodes, &node{words: words, line: wordLine})
				words = nil
			}
		}
		for pos < len(toks) {
			t := toks[pos]
			switch t.text {
			case "{":
				pos++
				if len(words) == 0 {
					return nil, fmt.Errorf("junoslike: line %d: '{' without a statement", t.line)
				}
				children, err := parseLevel(depth + 1)
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, &node{words: words, children: children, line: wordLine})
				words = nil
			case "}":
				pos++
				if depth == 0 {
					return nil, fmt.Errorf("junoslike: line %d: unbalanced '}'", t.line)
				}
				flushLeaf()
				return nodes, nil
			case ";":
				pos++
				flushLeaf()
			default:
				if len(words) == 0 {
					wordLine = t.line
				}
				words = append(words, t.text)
				pos++
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("junoslike: unexpected end of input inside a block")
		}
		flushLeaf()
		return nodes, nil
	}
	return parseLevel(0)
}

// Parse parses a Junos-like configuration into device intent.
func Parse(src string) (*ir.Device, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	tree, err := parseTree(toks)
	if err != nil {
		return nil, err
	}
	p := &interp{dev: ir.New("router")}
	for _, n := range tree {
		if err := p.top(n); err != nil {
			return nil, err
		}
	}
	if err := p.dev.Validate(); err != nil {
		return nil, err
	}
	return p.dev, nil
}

type interp struct{ dev *ir.Device }

// errf builds a parse diagnostic: *diag.Error with the line number as the
// offset, matching the eos parser's structured errors.
func (p *interp) errf(n *node, format string, args ...any) error {
	return diag.Newf(diag.SevError, "config", "", format, args...).WithOffset(n.line)
}

func (p *interp) top(n *node) error {
	switch n.kw() {
	case "system":
		return p.system(n)
	case "interfaces":
		for _, c := range n.children {
			if err := p.iface(c); err != nil {
				return err
			}
		}
		return nil
	case "protocols":
		return p.protocols(n)
	case "routing-options":
		return p.routingOptions(n)
	case "policy-options":
		// Policy statements are parsed structurally but the junoslike
		// dialect maps them onto the shared route-map machinery only when
		// referenced; for the scope of the reproduction we accept them.
		p.dev.Management.Lines += countLeaves(n)
		return nil
	default:
		return p.errf(n, "unrecognized top-level statement %q", n.kw())
	}
}

func countLeaves(n *node) int {
	if len(n.children) == 0 {
		return 1
	}
	total := 1
	for _, c := range n.children {
		total += countLeaves(c)
	}
	return total
}

func (p *interp) system(n *node) error {
	for _, c := range n.children {
		switch c.kw() {
		case "host-name":
			if c.arg(0) == "" {
				return p.errf(c, "host-name wants a value")
			}
			p.dev.Hostname = c.arg(0)
		case "services":
			for _, s := range c.children {
				p.dev.Management.Services = append(p.dev.Management.Services, s.kw())
			}
			p.dev.Management.Lines += countLeaves(c)
		default:
			p.dev.Management.Lines += countLeaves(c)
		}
	}
	return nil
}

func (p *interp) iface(n *node) error {
	name := n.kw()
	if name == "" {
		return p.errf(n, "interface with no name")
	}
	intf := p.dev.Interface(name)
	intf.Routed = true // Junos-style interfaces are L3 by construction.
	for _, unit := range n.children {
		switch unit.kw() {
		case "unit":
			fam := unit.child("family")
			if fam == nil {
				continue
			}
			if fam.arg(0) != "inet" {
				continue
			}
			for _, a := range fam.children {
				if a.kw() != "address" {
					continue
				}
				pfx, err := netip.ParsePrefix(a.arg(0))
				if err != nil || !pfx.Addr().Is4() {
					return p.errf(a, "bad IPv4 address %q", a.arg(0))
				}
				intf.Addresses = append(intf.Addresses, pfx)
			}
		case "disable":
			intf.Shutdown = true
		case "description", "mtu", "speed":
			// accepted
		default:
			return p.errf(unit, "unrecognized interface statement %q", unit.kw())
		}
	}
	return nil
}

// baseInterface strips the Junos unit suffix: "et-0/0/1.0" -> "et-0/0/1".
func baseInterface(s string) string {
	if i := strings.LastIndexByte(s, '.'); i > 0 {
		return s[:i]
	}
	return s
}

func (p *interp) protocols(n *node) error {
	for _, c := range n.children {
		switch c.kw() {
		case "isis":
			if err := p.isis(c); err != nil {
				return err
			}
		case "bgp":
			if err := p.bgp(c); err != nil {
				return err
			}
		case "mpls":
			if p.dev.MPLS == nil {
				p.dev.MPLS = &ir.MPLS{}
			}
			p.dev.MPLS.Enabled = true
			for _, m := range c.children {
				if m.kw() == "interface" {
					p.dev.Interface(baseInterface(m.arg(0))).MPLSEnabled = true
				}
				if m.kw() == "traffic-engineering" {
					p.dev.MPLS.TE = true
				}
			}
		case "rsvp", "ldp":
			if p.dev.MPLS == nil {
				p.dev.MPLS = &ir.MPLS{}
			}
			p.dev.MPLS.Enabled = true
		default:
			return p.errf(c, "unrecognized protocol %q", c.kw())
		}
	}
	return nil
}

func (p *interp) isis(n *node) error {
	if p.dev.ISIS == nil {
		p.dev.ISIS = &ir.ISIS{Instance: "default", AddressFamilies: []string{"ipv4 unicast"}}
	}
	for _, c := range n.children {
		switch c.kw() {
		case "net":
			p.dev.ISIS.NET = c.arg(0)
		case "interface":
			name := baseInterface(c.arg(0))
			if name == "" {
				return p.errf(c, "isis interface wants a name")
			}
			intf := p.dev.Interface(name)
			intf.ISISEnabled = true
			for _, opt := range c.children {
				switch opt.kw() {
				case "passive":
					intf.ISISPassive = true
				case "metric":
					v, err := strconv.ParseUint(opt.arg(0), 10, 32)
					if err != nil {
						return p.errf(opt, "bad metric %q", opt.arg(0))
					}
					intf.ISISMetric = uint32(v)
				default:
					return p.errf(opt, "unrecognized isis interface option %q", opt.kw())
				}
			}
		case "level", "lsp-lifetime", "spf-options":
			// accepted
		default:
			return p.errf(c, "unrecognized isis statement %q", c.kw())
		}
	}
	return nil
}

func (p *interp) bgp(n *node) error {
	if p.dev.BGP == nil {
		p.dev.BGP = &ir.BGP{}
	}
	bgp := p.dev.BGP
	for _, g := range n.children {
		if g.kw() != "group" {
			return p.errf(g, "unrecognized bgp statement %q", g.kw())
		}
		var (
			peerAS    uint32
			updateSrc string
			nhs       bool
		)
		var neighbors []*node
		for _, c := range g.children {
			switch c.kw() {
			case "type":
				// internal/external is inferred from local vs peer AS.
			case "peer-as":
				v, err := strconv.ParseUint(c.arg(0), 10, 32)
				if err != nil {
					return p.errf(c, "bad peer-as %q", c.arg(0))
				}
				peerAS = uint32(v)
			case "local-address":
				// Resolved to the interface owning this address at the end.
				updateSrc = c.arg(0)
			case "export", "import":
				// Policy references are accepted; the junoslike reproduction
				// applies default policies.
			case "next-hop-self":
				nhs = true
			case "neighbor":
				neighbors = append(neighbors, c)
			default:
				return p.errf(c, "unrecognized bgp group statement %q", c.kw())
			}
		}
		for _, nb := range neighbors {
			a, err := netip.ParseAddr(nb.arg(0))
			if err != nil || !a.Is4() {
				return p.errf(nb, "bad neighbor address %q", nb.arg(0))
			}
			peer := bgp.EnsureNeighbor(a)
			peer.RemoteAS = peerAS
			peer.NextHopSelf = nhs
			if updateSrc != "" {
				// Map the local-address back to the owning interface.
				if name, ok := p.interfaceForAddr(updateSrc); ok {
					peer.UpdateSource = name
				}
			}
			for _, o := range nb.children {
				switch o.kw() {
				case "peer-as":
					v, err := strconv.ParseUint(o.arg(0), 10, 32)
					if err != nil {
						return p.errf(o, "bad peer-as %q", o.arg(0))
					}
					peer.RemoteAS = uint32(v)
				case "description":
					peer.Description = strings.Join(o.words[1:], " ")
				case "multihop":
					peer.EBGPMultihop = 4
				default:
					return p.errf(o, "unrecognized neighbor option %q", o.kw())
				}
			}
		}
	}
	return nil
}

func (p *interp) interfaceForAddr(addr string) (string, bool) {
	a, err := netip.ParseAddr(addr)
	if err != nil {
		return "", false
	}
	for _, intf := range p.dev.Interfaces {
		for _, pfx := range intf.Addresses {
			if pfx.Addr() == a {
				return intf.Name, true
			}
		}
	}
	return "", false
}

func (p *interp) routingOptions(n *node) error {
	for _, c := range n.children {
		switch c.kw() {
		case "autonomous-system":
			v, err := strconv.ParseUint(c.arg(0), 10, 32)
			if err != nil {
				return p.errf(c, "bad autonomous-system %q", c.arg(0))
			}
			if p.dev.BGP == nil {
				p.dev.BGP = &ir.BGP{}
			}
			p.dev.BGP.ASN = uint32(v)
		case "router-id":
			a, err := netip.ParseAddr(c.arg(0))
			if err != nil || !a.Is4() {
				return p.errf(c, "bad router-id %q", c.arg(0))
			}
			if p.dev.BGP == nil {
				p.dev.BGP = &ir.BGP{}
			}
			p.dev.BGP.RouterID = a
		case "static":
			for _, r := range c.children {
				if r.kw() != "route" {
					return p.errf(r, "unrecognized static statement %q", r.kw())
				}
				pfx, err := netip.ParsePrefix(r.arg(0))
				if err != nil || !pfx.Addr().Is4() {
					return p.errf(r, "bad route prefix %q", r.arg(0))
				}
				sr := ir.StaticRoute{Prefix: pfx.Masked()}
				switch r.arg(1) {
				case "next-hop":
					nh, err := netip.ParseAddr(r.arg(2))
					if err != nil || !nh.Is4() {
						return p.errf(r, "bad next-hop %q", r.arg(2))
					}
					sr.NextHop = nh
				case "discard", "reject":
					sr.Drop = true
				default:
					return p.errf(r, "route wants next-hop or discard")
				}
				p.dev.Statics = append(p.dev.Statics, sr)
			}
		default:
			return p.errf(c, "unrecognized routing-options statement %q", c.kw())
		}
	}
	return nil
}
