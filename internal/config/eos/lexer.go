// Package eos parses an Arista-EOS-like configuration dialect into the
// vendor-independent IR. This parser plays the role of the vendor's own
// configuration front end: it accepts the *entire* dialect, including
// management-plane statements that have no dataplane effect. The deliberately
// partial parser in internal/model plays Batfish's role and accepts only a
// whitelist; the coverage gap between the two is the paper's experiment E2.
package eos

import "strings"

// line is one logical config line.
type line struct {
	num    int      // 1-based line number in the source
	indent int      // leading spaces
	words  []string // whitespace-split tokens, comment stripped
	raw    string   // original text, for diagnostics
}

// lex splits a config into logical lines, stripping blank lines, full-line
// comments and trailing "! comment" text. EOS block structure is conveyed by
// indentation, which is preserved via indent.
func lex(src string) []line {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		text := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimLeft(text, " \t")
		if trimmed == "" {
			continue
		}
		indent := len(text) - len(trimmed)
		// Full-line comment or block terminator.
		if trimmed[0] == '!' || trimmed[0] == '#' {
			continue
		}
		// Trailing comment: EOS accepts "statement ! comment".
		if idx := strings.Index(trimmed, " !"); idx >= 0 {
			trimmed = strings.TrimRight(trimmed[:idx], " \t")
			if trimmed == "" {
				continue
			}
		}
		words := strings.Fields(trimmed)
		if len(words) == 0 {
			// Exotic whitespace (form feed, vertical tab) survives the cutset
			// trims above but still splits to nothing; treat it as blank
			// rather than hand the parser a zero-word line.
			continue
		}
		out = append(out, line{
			num:    i + 1,
			indent: indent,
			words:  words,
			raw:    raw,
		})
	}
	return out
}

// CountConfigLines returns the number of effective (non-blank, non-comment)
// configuration lines, the denominator of the coverage experiment.
func CountConfigLines(src string) int { return len(lex(src)) }
