package eos

import (
	"net/netip"
	"strings"
	"testing"
)

// fig3Config is the Router 1 configuration from the paper's Fig. 3, extended
// with the loopback block exactly as printed.
const fig3Config = `router isis default ! Correctly parsed.
   net 49.0001.1010.1040.1030.00
   address-family ipv4 unicast
!
interface Loopback0 ! Correctly parsed.
   ip address 2.2.2.1/32
   isis enable default
   isis passive-interface default
interface Ethernet2
   ip address 100.64.0.1/31
   no switchport
   isis enable default
!
`

func TestParseFig3(t *testing.T) {
	dev, diags, err := Parse(fig3Config)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(diags.Unknown) != 0 {
		t.Errorf("vendor parser reported unknown lines: %v", diags.Unknown)
	}
	if dev.ISIS == nil || dev.ISIS.NET != "49.0001.1010.1040.1030.00" {
		t.Fatalf("ISIS = %+v", dev.ISIS)
	}
	sysID, err := dev.ISIS.SystemID()
	if err != nil || sysID != "1010.1040.1030" {
		t.Errorf("SystemID = %q, %v", sysID, err)
	}
	lo := dev.Interface("Loopback0")
	if !lo.ISISEnabled || !lo.ISISPassive {
		t.Errorf("Loopback0 = %+v, want isis enabled+passive", lo)
	}
	if len(lo.Addresses) != 1 || lo.Addresses[0] != netip.MustParsePrefix("2.2.2.1/32") {
		t.Errorf("Loopback0 addresses = %v", lo.Addresses)
	}
	// The crucial behaviour: ip address BEFORE no switchport still takes
	// effect — the vendor front end has no ordering assumption.
	e2 := dev.Interface("Ethernet2")
	if len(e2.Addresses) != 1 || e2.Addresses[0] != netip.MustParsePrefix("100.64.0.1/31") {
		t.Errorf("Ethernet2 addresses = %v; ordering assumption leaked into vendor parser", e2.Addresses)
	}
	if !e2.Routed || !e2.ISISEnabled {
		t.Errorf("Ethernet2 = %+v, want routed with isis", e2)
	}
}

func TestCountConfigLines(t *testing.T) {
	if got := CountConfigLines(fig3Config); got != 11 {
		t.Errorf("CountConfigLines = %d, want 11", got)
	}
	if got := CountConfigLines("! all comments\n\n!\n"); got != 0 {
		t.Errorf("CountConfigLines(comments) = %d, want 0", got)
	}
}

func TestParseBGP(t *testing.T) {
	cfg := `hostname r2
router bgp 65002
   router-id 2.2.2.2
   neighbor 100.64.0.0 remote-as 65001
   neighbor 100.64.0.0 description upstream transit
   neighbor 100.64.0.0 route-map IMPORT in
   neighbor 100.64.0.0 route-map EXPORT out
   neighbor 100.64.0.0 send-community
   neighbor 2.2.2.9 remote-as 65002
   neighbor 2.2.2.9 update-source Loopback0
   neighbor 2.2.2.9 next-hop-self
   neighbor 2.2.2.9 route-reflector-client
   neighbor 2.2.2.9 ebgp-multihop 4
   network 192.0.2.0/24
   redistribute connected
   maximum-paths 4
   address-family ipv4
      neighbor 100.64.0.0 activate
route-map IMPORT permit 10
route-map EXPORT permit 10
`
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if dev.Hostname != "r2" {
		t.Errorf("Hostname = %q", dev.Hostname)
	}
	b := dev.BGP
	if b == nil || b.ASN != 65002 || b.RouterID != netip.MustParseAddr("2.2.2.2") {
		t.Fatalf("BGP = %+v", b)
	}
	ext, ok := b.Neighbor(netip.MustParseAddr("100.64.0.0"))
	if !ok || ext.RemoteAS != 65001 || ext.RouteMapIn != "IMPORT" || ext.RouteMapOut != "EXPORT" || !ext.SendCommunity {
		t.Errorf("external neighbor = %+v", ext)
	}
	if ext.Description != "upstream transit" {
		t.Errorf("Description = %q", ext.Description)
	}
	internal, _ := b.Neighbor(netip.MustParseAddr("2.2.2.9"))
	if internal.UpdateSource != "Loopback0" || !internal.NextHopSelf ||
		!internal.RouteReflectorClient || internal.EBGPMultihop != 4 {
		t.Errorf("internal neighbor = %+v", internal)
	}
	if len(b.Networks) != 1 || b.Networks[0] != netip.MustParsePrefix("192.0.2.0/24") {
		t.Errorf("Networks = %v", b.Networks)
	}
	if len(b.Redistribute) != 1 || b.Redistribute[0] != "connected" {
		t.Errorf("Redistribute = %v", b.Redistribute)
	}
}

func TestParseStaticRoutes(t *testing.T) {
	cfg := `ip routing
ip route 0.0.0.0/0 100.64.0.0
ip route 10.0.0.0/8 Null0
ip route 172.16.0.0/12 Ethernet1 10.1.1.2 250
`
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(dev.Statics) != 3 {
		t.Fatalf("Statics = %v", dev.Statics)
	}
	if dev.Statics[0].NextHop != netip.MustParseAddr("100.64.0.0") {
		t.Errorf("default route = %+v", dev.Statics[0])
	}
	if !dev.Statics[1].Drop {
		t.Errorf("Null0 route not drop: %+v", dev.Statics[1])
	}
	s := dev.Statics[2]
	if s.Interface != "Ethernet1" || s.NextHop != netip.MustParseAddr("10.1.1.2") || s.Distance != 250 {
		t.Errorf("interface route = %+v", s)
	}
}

func TestParsePrefixListAndRouteMap(t *testing.T) {
	cfg := `ip prefix-list AGG seq 10 permit 10.0.0.0/8 ge 16 le 24
ip prefix-list AGG seq 20 deny 0.0.0.0/0 le 32
route-map POLICY deny 5
   match as-path contains 64512
route-map POLICY permit 10
   match ip address prefix-list AGG
   set local-preference 200
   set med 50
   set community 65000:100 65000:200 additive
   set ip next-hop 192.0.2.1
   set as-path prepend 65000 65000
`
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pl := dev.PrefixLists["AGG"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("prefix list = %+v", pl)
	}
	if pl.Entries[0].Ge != 16 || pl.Entries[0].Le != 24 {
		t.Errorf("entry 10 = %+v", pl.Entries[0])
	}
	rm := dev.RouteMaps["POLICY"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("route map = %+v", rm)
	}
	if rm.Clauses[0].Seq != 5 || rm.Clauses[0].MatchASInPath != 64512 {
		t.Errorf("clause 5 = %+v", rm.Clauses[0])
	}
	c10 := rm.Clauses[1]
	if c10.MatchPrefixList != "AGG" || c10.SetLocalPref != 200 || !c10.SetMEDSet ||
		c10.SetMED != 50 || len(c10.SetCommunities) != 2 ||
		c10.SetNextHop != netip.MustParseAddr("192.0.2.1") || len(c10.PrependAS) != 2 {
		t.Errorf("clause 10 = %+v", c10)
	}
}

func TestParseManagementAndDaemons(t *testing.T) {
	cfg := `daemon PowerManager
   exec /usr/bin/powermanager
   no shutdown
daemon LedPolicy
   exec /usr/bin/ledd
daemon Thermostat
   exec /usr/bin/thermostat
management api gnmi
   transport grpc default
   ssl profile SECURE
management ssh
   idle-timeout 60
ntp server 192.0.2.123
logging host 192.0.2.50
snmp-server community public ro
username admin privilege 15 secret foo
service routing protocols model multi-agent
spanning-tree mode mstp
`
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := dev.Management
	if len(m.Daemons) != 3 || m.Daemons[0] != "PowerManager" {
		t.Errorf("Daemons = %v", m.Daemons)
	}
	if len(m.SSLProfiles) != 1 || m.SSLProfiles[0] != "SECURE" {
		t.Errorf("SSLProfiles = %v", m.SSLProfiles)
	}
	if m.Users != 1 {
		t.Errorf("Users = %d", m.Users)
	}
	found := 0
	for _, s := range m.Services {
		if s == "api gnmi" || s == "ntp" || s == "logging" {
			found++
		}
	}
	if found != 3 {
		t.Errorf("Services = %v", m.Services)
	}
}

func TestParseMPLSAndTE(t *testing.T) {
	cfg := `mpls ip
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   mpls ip
   isis metric 25
router traffic-engineering
   tunnel TO-R3
      destination 3.3.3.3
      priority 5 5
   tunnel TO-R4
      destination 4.4.4.4
`
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if dev.MPLS == nil || !dev.MPLS.Enabled || !dev.MPLS.TE {
		t.Fatalf("MPLS = %+v", dev.MPLS)
	}
	if len(dev.MPLS.LSPs) != 2 {
		t.Fatalf("LSPs = %+v", dev.MPLS.LSPs)
	}
	if dev.MPLS.LSPs[0].To != netip.MustParseAddr("3.3.3.3") || dev.MPLS.LSPs[0].SetupPriority != 5 {
		t.Errorf("LSP[0] = %+v", dev.MPLS.LSPs[0])
	}
	if dev.MPLS.LSPs[1].SetupPriority != 7 {
		t.Errorf("LSP[1] default priority = %+v", dev.MPLS.LSPs[1])
	}
	if !dev.Interface("Ethernet1").MPLSEnabled {
		t.Error("interface mpls ip not parsed")
	}
	if dev.Interface("Ethernet1").ISISMetric != 25 {
		t.Errorf("isis metric = %d", dev.Interface("Ethernet1").ISISMetric)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  string
		want string
	}{
		{"unknown top", "florble gork\n", "unrecognized"},
		{"bad prefix", "interface Ethernet1\n   ip address 999.0.0.1/31\n", "bad IPv4 prefix"},
		{"bad asn", "router bgp zero\n", "bad AS number"},
		{"neighbor junk", "router bgp 1\n   neighbor 10.0.0.1 frobnicate\n", "unrecognized"},
		{"bad community", "route-map X permit 10\n   set community nope\n", "bad community"},
		{"bad static", "ip route 10.0.0.0/8\n", "wants a prefix and next hop"},
		{"route-map bad action", "route-map X frobnicate 10\n", "permit or deny"},
		{"isis no net", "router isis default\n   address-family ipv4 unicast\n", "without a NET"},
		{"neighbor no remote-as", "router bgp 5\n   neighbor 10.0.0.1 next-hop-self\n", "no remote-as"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Parse(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestParseLenientRecordsUnknown(t *testing.T) {
	cfg := "florble gork\ninterface Ethernet1\n   no switchport\n   quux\n"
	dev, diags, err := ParseLenient(cfg)
	if err != nil {
		t.Fatalf("ParseLenient: %v", err)
	}
	if len(diags.Unknown) != 2 {
		t.Errorf("Unknown = %v, want 2 entries", diags.Unknown)
	}
	if diags.TotalLines != 4 {
		t.Errorf("TotalLines = %d, want 4", diags.TotalLines)
	}
	if !dev.Interface("Ethernet1").Routed {
		t.Error("known statements not applied in lenient mode")
	}
}

func TestShutdownToggle(t *testing.T) {
	cfg := "interface Ethernet1\n   shutdown\ninterface Ethernet2\n   shutdown\n   no shutdown\n"
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dev.Interface("Ethernet1").Shutdown {
		t.Error("Ethernet1 not shut down")
	}
	if dev.Interface("Ethernet2").Shutdown {
		t.Error("no shutdown did not clear shutdown")
	}
}

func TestTrailingCommentHandling(t *testing.T) {
	cfg := "hostname r9 ! production edge\n"
	dev, _, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Hostname != "r9" {
		t.Errorf("Hostname = %q, trailing comment not stripped", dev.Hostname)
	}
}
