package eos

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"mfv/internal/config/ir"
	"mfv/internal/diag"
	"mfv/internal/policy"
)

// Diagnostics reports what the parser saw, mirroring the accounting the
// paper performs for its coverage experiment.
type Diagnostics struct {
	// TotalLines is the number of effective configuration lines.
	TotalLines int
	// Unknown lists lines the parser did not understand. For this full
	// dialect parser the list is empty on well-formed vendor configs; it is
	// populated for genuinely malformed input in non-strict mode.
	Unknown []string
}

// Parse parses an EOS-dialect configuration into device intent. Unknown
// statements are an error: this parser models the vendor's own front end,
// which rejects syntax it does not define.
func Parse(src string) (*ir.Device, *Diagnostics, error) {
	return parse(src, true)
}

// ParseLenient parses like Parse but records unknown lines in Diagnostics
// instead of failing, mirroring a device that logs and skips bad lines.
func ParseLenient(src string) (*ir.Device, *Diagnostics, error) {
	return parse(src, false)
}

type parser struct {
	dev    *ir.Device
	lines  []line
	pos    int
	strict bool
	diags  *Diagnostics
}

func parse(src string, strict bool) (*ir.Device, *Diagnostics, error) {
	p := &parser{
		dev:    ir.New("router"),
		lines:  lex(src),
		strict: strict,
		diags:  &Diagnostics{},
	}
	p.diags.TotalLines = len(p.lines)
	if err := p.run(); err != nil {
		return nil, p.diags, err
	}
	if err := p.dev.Validate(); err != nil {
		return nil, p.diags, err
	}
	return p.dev, p.diags, nil
}

// errf builds a parse diagnostic: *diag.Error with the line number as the
// offset, so callers can attribute the rejection to a device and location
// without string matching.
func (p *parser) errf(l line, format string, args ...any) error {
	return diag.Newf(diag.SevError, "config", "",
		"%s: %s", fmt.Sprintf(format, args...), strings.TrimSpace(l.raw)).WithOffset(l.num)
}

// unknown handles an unrecognized line per the strictness mode.
func (p *parser) unknown(l line) error {
	if p.strict {
		return p.errf(l, "unrecognized statement")
	}
	p.diags.Unknown = append(p.diags.Unknown, strings.TrimSpace(l.raw))
	return nil
}

// block returns the lines of the sub-block opened by the header at index i
// (every following line with indent > header indent) and the index after it.
func (p *parser) block(i int) ([]line, int) {
	header := p.lines[i]
	j := i + 1
	for j < len(p.lines) && p.lines[j].indent > header.indent {
		j++
	}
	return p.lines[i+1 : j], j
}

func (p *parser) run() error {
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		var body []line
		body, next := p.block(p.pos)
		var err error
		switch l.words[0] {
		case "hostname":
			if len(l.words) != 2 {
				return p.errf(l, "hostname wants one argument")
			}
			p.dev.Hostname = l.words[1]
		case "interface":
			err = p.parseInterface(l, body)
		case "router":
			err = p.parseRouter(l, body)
		case "ip":
			err = p.parseIP(l, body)
		case "route-map":
			err = p.parseRouteMap(l, body)
		case "mpls":
			err = p.parseMPLSGlobal(l)
		case "daemon":
			err = p.parseDaemon(l, body)
		case "management":
			err = p.parseManagement(l, body)
		case "username":
			p.dev.Management.Users++
			p.dev.Management.Lines++
		case "service", "spanning-tree", "transceiver", "aaa", "clock", "ntp",
			"logging", "snmp-server", "queue-monitor", "platform", "terminal",
			"banner", "dns", "hardware", "errdisable", "load-interval", "vrf":
			// Non-dataplane global statements: accepted and accounted.
			p.dev.Management.Lines += 1 + len(body)
			if l.words[0] == "ntp" || l.words[0] == "logging" || l.words[0] == "snmp-server" {
				p.dev.Management.Services = appendUnique(p.dev.Management.Services, l.words[0])
			}
		case "no":
			// Global negations (e.g. "no aaa root") — accepted.
			p.dev.Management.Lines++
		case "end":
			// Terminator; ignore.
		default:
			err = p.unknown(l)
		}
		if err != nil {
			return err
		}
		p.pos = next
	}
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

func (p *parser) parseInterface(header line, body []line) error {
	if len(header.words) != 2 {
		return p.errf(header, "interface wants a name")
	}
	intf := p.dev.Interface(header.words[1])
	for _, l := range body {
		switch {
		case match(l, "description"):
			// Free text, accepted.
		case match(l, "no", "switchport"):
			intf.Routed = true
		case match(l, "switchport"):
			intf.Routed = false
		case match(l, "ip", "address"):
			if len(l.words) != 3 {
				return p.errf(l, "ip address wants a prefix")
			}
			pfx, err := netip.ParsePrefix(l.words[2])
			if err != nil || !pfx.Addr().Is4() {
				return p.errf(l, "bad IPv4 prefix")
			}
			intf.Addresses = append(intf.Addresses, pfx)
		case match(l, "isis", "enable"):
			if len(l.words) != 3 {
				return p.errf(l, "isis enable wants an instance")
			}
			intf.ISISEnabled = true
		case match(l, "isis", "passive-interface") || match(l, "isis", "passive"):
			intf.ISISPassive = true
		case match(l, "isis", "metric"):
			v, err := atoi(l, 2)
			if err != nil {
				return err
			}
			intf.ISISMetric = uint32(v)
		case match(l, "mpls", "ip"):
			intf.MPLSEnabled = true
		case match(l, "shutdown"):
			intf.Shutdown = true
		case match(l, "no", "shutdown"):
			intf.Shutdown = false
		case match(l, "mtu"), match(l, "speed"), match(l, "load-interval"),
			match(l, "logging", "event"), match(l, "snmp", "trap"):
			// Accepted physical/telemetry knobs with no dataplane effect.
		default:
			if err := p.unknown(l); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseRouter(header line, body []line) error {
	if len(header.words) < 2 {
		return p.errf(header, "router wants a protocol")
	}
	switch header.words[1] {
	case "isis":
		return p.parseRouterISIS(header, body)
	case "bgp":
		return p.parseRouterBGP(header, body)
	case "traffic-engineering":
		return p.parseRouterTE(header, body)
	default:
		return p.unknown(header)
	}
}

func (p *parser) parseRouterISIS(header line, body []line) error {
	if len(header.words) != 3 {
		return p.errf(header, "router isis wants an instance name")
	}
	if p.dev.ISIS == nil {
		p.dev.ISIS = &ir.ISIS{Instance: header.words[2]}
	}
	isis := p.dev.ISIS
	for _, l := range body {
		switch {
		case match(l, "net"):
			if len(l.words) != 2 {
				return p.errf(l, "net wants a NET")
			}
			isis.NET = l.words[1]
		case match(l, "address-family"):
			isis.AddressFamilies = appendUnique(isis.AddressFamilies, strings.Join(l.words[1:], " "))
		case match(l, "passive-interface", "default"):
			isis.PassiveDefault = true
		case match(l, "is-type"), match(l, "log-adjacency-changes"),
			match(l, "metric-style"), match(l, "set-overload-bit"):
			// Accepted knobs the simplified IS-IS engine treats as defaults.
		default:
			if err := p.unknown(l); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseRouterBGP(header line, body []line) error {
	if len(header.words) != 3 {
		return p.errf(header, "router bgp wants an AS number")
	}
	asn, err := strconv.ParseUint(header.words[2], 10, 32)
	if err != nil || asn == 0 {
		return p.errf(header, "bad AS number")
	}
	if p.dev.BGP == nil {
		p.dev.BGP = &ir.BGP{ASN: uint32(asn)}
	}
	bgp := p.dev.BGP
	for _, l := range body {
		switch {
		case match(l, "router-id"):
			a, err := parseAddr(l, 1)
			if err != nil {
				return err
			}
			bgp.RouterID = a
		case match(l, "neighbor"):
			if err := p.parseNeighbor(bgp, l); err != nil {
				return err
			}
		case match(l, "network"):
			if len(l.words) != 2 {
				return p.errf(l, "network wants a prefix")
			}
			pfx, err := netip.ParsePrefix(l.words[1])
			if err != nil || !pfx.Addr().Is4() {
				return p.errf(l, "bad IPv4 prefix")
			}
			bgp.Networks = append(bgp.Networks, pfx.Masked())
		case match(l, "redistribute"):
			if len(l.words) != 2 {
				return p.errf(l, "redistribute wants a source")
			}
			switch l.words[1] {
			case "connected", "static", "isis":
				bgp.Redistribute = appendUnique(bgp.Redistribute, l.words[1])
			default:
				return p.errf(l, "unsupported redistribute source")
			}
		case match(l, "address-family"):
			// The sub-block (activate statements etc.) is consumed as part
			// of body already; nothing to do for IPv4 unicast defaults.
		case match(l, "maximum-paths"), match(l, "bgp", "log-neighbor-changes"),
			match(l, "timers"), match(l, "graceful-restart"), match(l, "activate"),
			match(l, "bgp", "advertise-inactive"), match(l, "no", "bgp"):
			// Accepted tuning knobs.
		default:
			if err := p.unknown(l); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseNeighbor(bgp *ir.BGP, l line) error {
	if len(l.words) < 3 {
		return p.errf(l, "neighbor wants an address and attribute")
	}
	addr, err := netip.ParseAddr(l.words[1])
	if err != nil || !addr.Is4() {
		return p.errf(l, "bad neighbor address")
	}
	n := bgp.EnsureNeighbor(addr)
	rest := l.words[2:]
	switch rest[0] {
	case "remote-as":
		if len(rest) != 2 {
			return p.errf(l, "remote-as wants an AS number")
		}
		as, err := strconv.ParseUint(rest[1], 10, 32)
		if err != nil || as == 0 {
			return p.errf(l, "bad AS number")
		}
		n.RemoteAS = uint32(as)
	case "update-source":
		if len(rest) != 2 {
			return p.errf(l, "update-source wants an interface")
		}
		n.UpdateSource = rest[1]
	case "next-hop-self":
		n.NextHopSelf = true
	case "send-community":
		n.SendCommunity = true
	case "route-reflector-client":
		n.RouteReflectorClient = true
	case "description":
		n.Description = strings.Join(rest[1:], " ")
	case "ebgp-multihop":
		if len(rest) != 2 {
			return p.errf(l, "ebgp-multihop wants a TTL")
		}
		ttl, err := strconv.ParseUint(rest[1], 10, 8)
		if err != nil {
			return p.errf(l, "bad TTL")
		}
		n.EBGPMultihop = uint8(ttl)
	case "route-map":
		if len(rest) != 3 || (rest[2] != "in" && rest[2] != "out") {
			return p.errf(l, "route-map wants a name and in|out")
		}
		if rest[2] == "in" {
			n.RouteMapIn = rest[1]
		} else {
			n.RouteMapOut = rest[1]
		}
	case "shutdown":
		n.Shutdown = true
	case "activate", "maximum-routes", "timers", "password", "allowas-in":
		// Accepted tuning knobs with no effect on the simplified engine.
	default:
		return p.unknown(l)
	}
	return nil
}

func (p *parser) parseRouterTE(header line, body []line) error {
	if p.dev.MPLS == nil {
		p.dev.MPLS = &ir.MPLS{}
	}
	p.dev.MPLS.TE = true
	var cur *ir.LSP
	flush := func() {
		if cur != nil {
			p.dev.MPLS.LSPs = append(p.dev.MPLS.LSPs, *cur)
			cur = nil
		}
	}
	for _, l := range body {
		switch {
		case match(l, "tunnel"):
			if len(l.words) != 2 {
				return p.errf(l, "tunnel wants a name")
			}
			flush()
			cur = &ir.LSP{Name: l.words[1], SetupPriority: 7, HoldPriority: 7}
		case match(l, "destination"):
			if cur == nil {
				return p.errf(l, "destination outside tunnel")
			}
			a, err := parseAddr(l, 1)
			if err != nil {
				return err
			}
			cur.To = a
		case match(l, "priority"):
			if cur == nil || len(l.words) != 3 {
				return p.errf(l, "priority wants setup and hold values inside a tunnel")
			}
			s, err1 := strconv.ParseUint(l.words[1], 10, 8)
			h, err2 := strconv.ParseUint(l.words[2], 10, 8)
			if err1 != nil || err2 != nil || s > 7 || h > 7 {
				return p.errf(l, "bad priority")
			}
			cur.SetupPriority, cur.HoldPriority = uint8(s), uint8(h)
		default:
			if err := p.unknown(l); err != nil {
				return err
			}
		}
	}
	flush()
	return nil
}

func (p *parser) parseIP(l line, body []line) error {
	switch {
	case match(l, "ip", "routing"):
		// Routing is always on in the virtual router.
	case match(l, "ip", "route"):
		return p.parseStaticRoute(l)
	case match(l, "ip", "prefix-list"):
		return p.parsePrefixList(l)
	case match(l, "ip", "name-server"), match(l, "ip", "domain-name"),
		match(l, "ip", "ssh"), match(l, "ip", "icmp"):
		p.dev.Management.Lines += 1 + len(body)
	default:
		return p.unknown(l)
	}
	return nil
}

func (p *parser) parseStaticRoute(l line) error {
	// ip route PREFIX (NEXTHOP|Null0|INTERFACE NEXTHOP) [distance]
	if len(l.words) < 4 {
		return p.errf(l, "ip route wants a prefix and next hop")
	}
	pfx, err := netip.ParsePrefix(l.words[2])
	if err != nil || !pfx.Addr().Is4() {
		return p.errf(l, "bad IPv4 prefix")
	}
	sr := ir.StaticRoute{Prefix: pfx.Masked()}
	rest := l.words[3:]
	switch {
	case rest[0] == "Null0" || rest[0] == "null0":
		sr.Drop = true
		rest = rest[1:]
	default:
		if a, err := netip.ParseAddr(rest[0]); err == nil && a.Is4() {
			sr.NextHop = a
			rest = rest[1:]
		} else {
			// Interface form: "ip route P Ethernet1 [NH]".
			sr.Interface = rest[0]
			rest = rest[1:]
			if len(rest) > 0 {
				if a, err := netip.ParseAddr(rest[0]); err == nil && a.Is4() {
					sr.NextHop = a
					rest = rest[1:]
				}
			}
		}
	}
	if len(rest) > 0 {
		d, err := strconv.ParseUint(rest[0], 10, 8)
		if err != nil {
			return p.errf(l, "bad distance")
		}
		sr.Distance = uint8(d)
		rest = rest[1:]
	}
	if len(rest) > 0 {
		return p.errf(l, "trailing tokens")
	}
	p.dev.Statics = append(p.dev.Statics, sr)
	return nil
}

func (p *parser) parsePrefixList(l line) error {
	// ip prefix-list NAME seq N permit|deny PREFIX [ge n] [le n]
	w := l.words
	if len(w) < 7 || w[3] != "seq" {
		return p.errf(l, "malformed prefix-list")
	}
	seq, err := strconv.Atoi(w[4])
	if err != nil {
		return p.errf(l, "bad seq")
	}
	var action policy.Action
	switch w[5] {
	case "permit":
		action = policy.Permit
	case "deny":
		action = policy.Deny
	default:
		return p.errf(l, "want permit or deny")
	}
	pfx, err := netip.ParsePrefix(w[6])
	if err != nil || !pfx.Addr().Is4() {
		return p.errf(l, "bad IPv4 prefix")
	}
	e := policy.PrefixListEntry{Seq: seq, Action: action, Prefix: pfx.Masked()}
	rest := w[7:]
	for len(rest) >= 2 {
		v, err := strconv.Atoi(rest[1])
		if err != nil || v < 0 || v > 32 {
			return p.errf(l, "bad ge/le value")
		}
		switch rest[0] {
		case "ge":
			e.Ge = v
		case "le":
			e.Le = v
		default:
			return p.errf(l, "want ge or le")
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return p.errf(l, "trailing tokens")
	}
	p.dev.PrefixList(w[2]).Add(e)
	return nil
}

func (p *parser) parseRouteMap(header line, body []line) error {
	// route-map NAME permit|deny SEQ
	w := header.words
	if len(w) != 4 {
		return p.errf(header, "route-map wants name, action, seq")
	}
	var action policy.Action
	switch w[2] {
	case "permit":
		action = policy.Permit
	case "deny":
		action = policy.Deny
	default:
		return p.errf(header, "want permit or deny")
	}
	seq, err := strconv.Atoi(w[3])
	if err != nil {
		return p.errf(header, "bad seq")
	}
	cl := policy.MapClause{Seq: seq, Action: action}
	for _, l := range body {
		switch {
		case match(l, "match", "ip", "address", "prefix-list"):
			if len(l.words) != 5 {
				return p.errf(l, "want a prefix-list name")
			}
			cl.MatchPrefixList = l.words[4]
		case match(l, "match", "community"):
			for _, cs := range l.words[2:] {
				c, err := policy.ParseCommunity(cs)
				if err != nil {
					return p.errf(l, "bad community")
				}
				cl.MatchCommunities = append(cl.MatchCommunities, c)
			}
		case match(l, "match", "as-path", "contains"):
			v, err := atoi(l, 3)
			if err != nil {
				return err
			}
			cl.MatchASInPath = uint32(v)
		case match(l, "set", "local-preference"):
			v, err := atoi(l, 2)
			if err != nil {
				return err
			}
			cl.SetLocalPref = uint32(v)
		case match(l, "set", "med") || match(l, "set", "metric"):
			v, err := atoi(l, 2)
			if err != nil {
				return err
			}
			cl.SetMED = uint32(v)
			cl.SetMEDSet = true
		case match(l, "set", "community"):
			for _, cs := range l.words[2:] {
				if cs == "additive" {
					continue
				}
				c, err := policy.ParseCommunity(cs)
				if err != nil {
					return p.errf(l, "bad community")
				}
				cl.SetCommunities = append(cl.SetCommunities, c)
			}
		case match(l, "set", "ip", "next-hop"):
			a, err := parseAddr(l, 3)
			if err != nil {
				return err
			}
			cl.SetNextHop = a
		case match(l, "set", "as-path", "prepend"):
			for _, as := range l.words[3:] {
				v, err := strconv.ParseUint(as, 10, 32)
				if err != nil {
					return p.errf(l, "bad AS")
				}
				cl.PrependAS = append(cl.PrependAS, uint32(v))
			}
		default:
			if err := p.unknown(l); err != nil {
				return err
			}
		}
	}
	p.dev.RouteMap(w[1]).Add(cl)
	return nil
}

func (p *parser) parseMPLSGlobal(l line) error {
	if !match(l, "mpls", "ip") {
		return p.unknown(l)
	}
	if p.dev.MPLS == nil {
		p.dev.MPLS = &ir.MPLS{}
	}
	p.dev.MPLS.Enabled = true
	return nil
}

func (p *parser) parseDaemon(header line, body []line) error {
	if len(header.words) != 2 {
		return p.errf(header, "daemon wants a name")
	}
	p.dev.Management.Daemons = appendUnique(p.dev.Management.Daemons, header.words[1])
	p.dev.Management.Lines += 1 + len(body)
	return nil
}

func (p *parser) parseManagement(header line, body []line) error {
	// management api gnmi / management api http-commands / management ssh /
	// management security — all accepted, all accounted as management lines.
	name := strings.Join(header.words[1:], " ")
	p.dev.Management.Services = appendUnique(p.dev.Management.Services, name)
	p.dev.Management.Lines += 1 + len(body)
	for _, l := range body {
		if match(l, "ssl", "profile") && len(l.words) == 3 {
			p.dev.Management.SSLProfiles = appendUnique(p.dev.Management.SSLProfiles, l.words[2])
		}
	}
	return nil
}

// match reports whether the line begins with the given words.
func match(l line, words ...string) bool {
	if len(l.words) < len(words) {
		return false
	}
	for i, w := range words {
		if l.words[i] != w {
			return false
		}
	}
	return true
}

func atoi(l line, idx int) (int, error) {
	if idx >= len(l.words) {
		return 0, fmt.Errorf("eos: line %d: missing numeric argument", l.num)
	}
	v, err := strconv.Atoi(l.words[idx])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("eos: line %d: bad number %q", l.num, l.words[idx])
	}
	return v, nil
}

func parseAddr(l line, idx int) (netip.Addr, error) {
	if idx >= len(l.words) {
		return netip.Addr{}, fmt.Errorf("eos: line %d: missing address", l.num)
	}
	a, err := netip.ParseAddr(l.words[idx])
	if err != nil || !a.Is4() {
		return netip.Addr{}, fmt.Errorf("eos: line %d: bad IPv4 address %q", l.num, l.words[idx])
	}
	return a, nil
}
