package eos

import (
	"reflect"
	"testing"
)

// fuzzSeedConfig exercises every block the dialect defines: interfaces,
// BGP with neighbors, IS-IS, traffic engineering, and statics.
const fuzzSeedConfig = `hostname r1
!
interface Loopback0
   ip address 2.2.2.1/32
interface Ethernet1
   ip address 10.0.0.0/31
   no switchport
!
router bgp 65001
   router-id 2.2.2.1
   neighbor 10.0.0.1 remote-as 65002
!
router isis core
   net 49.0001.1010.1040.1010.00
!
router traffic-engineering
   tunnel T1
      destination 2.2.2.2
!
ip route 9.9.9.0/24 10.0.0.1
`

// FuzzParse throws arbitrary text at the strict and lenient EOS parsers.
// Properties: parsing never panics (a config is hostile input — one bad
// device file must not kill the pipeline), an accepted device survives
// Validate without panicking, and parsing is deterministic.
func FuzzParse(f *testing.F) {
	f.Add(fuzzSeedConfig)
	f.Add("florble gork\n")
	f.Add("interface Ethernet999\n   ip address 999.999.999.999/99\n")
	f.Add("router bgp 4294967296\n")
	f.Add("\x00\x01\x7f garbled\n")
	f.Fuzz(func(t *testing.T, src string) {
		dev, _, err := Parse(src)
		if err == nil {
			if dev == nil {
				t.Fatal("nil device with nil error")
			}
			dev2, _, err2 := Parse(src)
			if err2 != nil || !reflect.DeepEqual(dev, dev2) {
				t.Fatalf("parse is not deterministic (err2=%v)", err2)
			}
		}
		if dev, _, err := ParseLenient(src); err == nil && dev == nil {
			t.Fatal("lenient: nil device with nil error")
		}
	})
}
