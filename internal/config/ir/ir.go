// Package ir defines the vendor-independent device intent produced by the
// dialect parsers (internal/config/eos, internal/config/junoslike) and
// consumed by the virtual router. It corresponds to the role vendor-internal
// configuration databases play on real devices: the parsers translate each
// vendor's syntax into this one structure, and everything downstream —
// protocol engines, the AFT exporter, the management plane — reads only IR.
package ir

import (
	"fmt"
	"net/netip"
	"sort"

	"mfv/internal/policy"
)

// Device is the parsed intent of one router configuration.
type Device struct {
	Hostname string
	// Interfaces in declaration order.
	Interfaces []*Interface
	ISIS       *ISIS
	BGP        *BGP
	MPLS       *MPLS
	Statics    []StaticRoute

	PrefixLists map[string]*policy.PrefixList
	RouteMaps   map[string]*policy.RouteMap

	// Management captures configuration that does not affect the dataplane
	// (daemons, management services, TLS profiles). The paper's coverage
	// experiment counts these lines: the emulated router accepts them, the
	// model-based parser does not.
	Management Management
}

// New returns an empty device intent with maps initialized.
func New(hostname string) *Device {
	return &Device{
		Hostname:    hostname,
		PrefixLists: map[string]*policy.PrefixList{},
		RouteMaps:   map[string]*policy.RouteMap{},
	}
}

// Interface returns the named interface, creating it if needed (vendor
// configs freely reference interfaces before declaring them).
func (d *Device) Interface(name string) *Interface {
	for _, intf := range d.Interfaces {
		if intf.Name == name {
			return intf
		}
	}
	intf := &Interface{Name: name}
	d.Interfaces = append(d.Interfaces, intf)
	return intf
}

// PrefixList returns the named prefix list, creating it if needed.
func (d *Device) PrefixList(name string) *policy.PrefixList {
	pl, ok := d.PrefixLists[name]
	if !ok {
		pl = &policy.PrefixList{Name: name}
		d.PrefixLists[name] = pl
	}
	return pl
}

// RouteMap returns the named route map, creating it if needed.
func (d *Device) RouteMap(name string) *policy.RouteMap {
	rm, ok := d.RouteMaps[name]
	if !ok {
		rm = &policy.RouteMap{Name: name}
		d.RouteMaps[name] = rm
	}
	return rm
}

// PolicyEnv adapts the device's prefix lists to policy.Env.
func (d *Device) PolicyEnv() policy.Env { return deviceEnv{d} }

type deviceEnv struct{ d *Device }

func (e deviceEnv) PrefixList(name string) (*policy.PrefixList, bool) {
	pl, ok := e.d.PrefixLists[name]
	return pl, ok
}

// Interface is the L3 intent for one port.
type Interface struct {
	Name string
	// Addresses carries the interface prefixes (address + mask length).
	Addresses []netip.Prefix
	// Routed reports the port is an L3 port ("no switchport" on EOS).
	// Loopbacks and EOS routed ports set it; the virtual router treats an
	// interface with addresses as routed regardless — the distinction only
	// matters to the model-based baseline, which reproduces the documented
	// ordering assumption around it.
	Routed   bool
	Shutdown bool

	ISISEnabled bool
	ISISPassive bool
	// ISISMetric is the interface IS-IS metric; 0 means the protocol
	// default (10).
	ISISMetric uint32

	MPLSEnabled bool
}

// PrimaryAddress returns the first configured address.
func (i *Interface) PrimaryAddress() (netip.Prefix, bool) {
	if len(i.Addresses) == 0 {
		return netip.Prefix{}, false
	}
	return i.Addresses[0], true
}

// ISIS is the IS-IS process intent.
type ISIS struct {
	Instance string
	// NET is the Network Entity Title, e.g. 49.0001.1010.1040.1030.00.
	NET string
	// AddressFamilies lists enabled AFs ("ipv4 unicast").
	AddressFamilies []string
	// PassiveDefault makes all interfaces passive unless overridden.
	PassiveDefault bool
}

// SystemID extracts the 6-byte system identifier from the NET. The NET has
// the form area…​.SSSS.SSSS.SSSS.SEL where the last octet is the selector.
func (i *ISIS) SystemID() (string, error) {
	if i == nil || i.NET == "" {
		return "", fmt.Errorf("ir: no NET configured")
	}
	// Strip dots, require at least selector (2) + system id (12) hex chars.
	var hex []byte
	for _, c := range i.NET {
		if c == '.' {
			continue
		}
		if !isHex(byte(c)) {
			return "", fmt.Errorf("ir: bad NET %q", i.NET)
		}
		hex = append(hex, byte(c))
	}
	if len(hex) < 14 {
		return "", fmt.Errorf("ir: NET %q too short", i.NET)
	}
	sys := hex[len(hex)-14 : len(hex)-2]
	return fmt.Sprintf("%s.%s.%s", sys[0:4], sys[4:8], sys[8:12]), nil
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

// BGP is the BGP process intent.
type BGP struct {
	ASN      uint32
	RouterID netip.Addr
	// Networks are prefixes originated with the network statement.
	Networks []netip.Prefix
	// Redistribute lists redistributed sources: "connected", "static",
	// "isis".
	Redistribute []string
	Neighbors    []*Neighbor
}

// Neighbor is one configured BGP peer.
type Neighbor struct {
	Addr     netip.Addr
	RemoteAS uint32
	// Description is free-form operator text.
	Description string
	// UpdateSource names the interface whose address sources the session
	// (conventionally Loopback0 for iBGP).
	UpdateSource string
	NextHopSelf  bool
	// RouteMapIn/Out name import/export route maps.
	RouteMapIn, RouteMapOut string
	SendCommunity           bool
	RouteReflectorClient    bool
	// EBGPMultihop permits TTL > 1 sessions (loopback eBGP).
	EBGPMultihop uint8
	Shutdown     bool
}

// Neighbor returns the neighbor with the given address.
func (b *BGP) Neighbor(a netip.Addr) (*Neighbor, bool) {
	for _, n := range b.Neighbors {
		if n.Addr == a {
			return n, true
		}
	}
	return nil, false
}

// EnsureNeighbor returns the neighbor for a, creating it if needed.
func (b *BGP) EnsureNeighbor(a netip.Addr) *Neighbor {
	if n, ok := b.Neighbor(a); ok {
		return n
	}
	n := &Neighbor{Addr: a}
	b.Neighbors = append(b.Neighbors, n)
	return n
}

// MPLS is the MPLS/TE intent.
type MPLS struct {
	Enabled bool
	// TE enables traffic engineering extensions.
	TE bool
	// LSPs are configured RSVP-TE tunnels.
	LSPs []LSP
}

// LSP is one signaled RSVP-TE tunnel intent.
type LSP struct {
	Name string
	// To is the tunnel tail-end (typically a loopback address).
	To netip.Addr
	// SetupPriority/HoldPriority follow RSVP-TE semantics (0 strongest).
	SetupPriority, HoldPriority uint8
}

// Management aggregates non-dataplane configuration. Fields are counted in
// the coverage experiment (E2) but otherwise inert.
type Management struct {
	// Daemons lists enabled management daemons (PowerManager, LedPolicy,
	// Thermostat, …).
	Daemons []string
	// Services lists management services (gRPC, gNMI, SSH, NTP, …).
	Services []string
	// SSLProfiles lists configured TLS profile names.
	SSLProfiles []string
	// Users counts local user statements.
	Users int
	// Lines counts the raw config lines attributed to management blocks.
	Lines int
}

// Validate checks intent-level invariants after parsing: addresses on
// IS-IS-enabled interfaces, a NET when IS-IS is on, an ASN when BGP is on,
// neighbor remote-as present, and referenced route maps defined.
func (d *Device) Validate() error {
	if d.ISIS != nil && d.ISIS.NET == "" {
		return fmt.Errorf("ir %s: isis enabled without a NET", d.Hostname)
	}
	if d.ISIS != nil {
		if _, err := d.ISIS.SystemID(); err != nil {
			return fmt.Errorf("ir %s: %w", d.Hostname, err)
		}
	}
	if d.BGP != nil {
		if d.BGP.ASN == 0 {
			return fmt.Errorf("ir %s: bgp enabled without local AS", d.Hostname)
		}
		for _, n := range d.BGP.Neighbors {
			if n.RemoteAS == 0 {
				return fmt.Errorf("ir %s: neighbor %s has no remote-as", d.Hostname, n.Addr)
			}
			for _, rmName := range []string{n.RouteMapIn, n.RouteMapOut} {
				if rmName == "" {
					continue
				}
				if _, ok := d.RouteMaps[rmName]; !ok {
					return fmt.Errorf("ir %s: neighbor %s references undefined route-map %s",
						d.Hostname, n.Addr, rmName)
				}
			}
		}
	}
	seen := map[string]bool{}
	for _, intf := range d.Interfaces {
		if seen[intf.Name] {
			return fmt.Errorf("ir %s: duplicate interface %s", d.Hostname, intf.Name)
		}
		seen[intf.Name] = true
		for _, a := range intf.Addresses {
			if !a.Addr().Is4() {
				return fmt.Errorf("ir %s: interface %s: non-IPv4 address %v", d.Hostname, intf.Name, a)
			}
		}
	}
	return nil
}

// ConnectedPrefixes returns the network prefixes of all interface addresses,
// deduplicated and sorted — the device's connected routes.
func (d *Device) ConnectedPrefixes() []netip.Prefix {
	set := map[netip.Prefix]bool{}
	for _, intf := range d.Interfaces {
		if intf.Shutdown {
			continue
		}
		for _, a := range intf.Addresses {
			set[a.Masked()] = true
		}
	}
	out := make([]netip.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// StaticRoute is a configured static route.
type StaticRoute struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
	// Interface optionally pins the egress port.
	Interface string
	// Drop is a Null0 discard route.
	Drop bool
	// Distance overrides the default administrative distance when nonzero.
	Distance uint8
}
