package ir

import (
	"net/netip"
	"strings"
	"testing"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

func TestInterfaceCreateOnReference(t *testing.T) {
	d := New("r1")
	a := d.Interface("Ethernet1")
	b := d.Interface("Ethernet1")
	if a != b {
		t.Error("Interface did not return the same object on re-reference")
	}
	if len(d.Interfaces) != 1 {
		t.Errorf("Interfaces = %d, want 1", len(d.Interfaces))
	}
	d.Interface("Ethernet2")
	if len(d.Interfaces) != 2 {
		t.Errorf("Interfaces = %d, want 2", len(d.Interfaces))
	}
}

func TestSystemID(t *testing.T) {
	isis := &ISIS{NET: "49.0001.1010.1040.1030.00"}
	id, err := isis.SystemID()
	if err != nil {
		t.Fatal(err)
	}
	if id != "1010.1040.1030" {
		t.Errorf("SystemID = %q, want 1010.1040.1030", id)
	}
}

func TestSystemIDErrors(t *testing.T) {
	for _, net := range []string{"", "49.0001", "49.zz01.1010.1040.1030.00"} {
		isis := &ISIS{NET: net}
		if _, err := isis.SystemID(); err == nil {
			t.Errorf("SystemID(%q) succeeded", net)
		}
	}
	var nilISIS *ISIS
	if _, err := nilISIS.SystemID(); err == nil {
		t.Error("nil ISIS SystemID succeeded")
	}
}

func TestValidate(t *testing.T) {
	good := New("r1")
	good.Interface("Loopback0").Addresses = []netip.Prefix{pfx("1.1.1.1/32")}
	good.ISIS = &ISIS{NET: "49.0001.0000.0000.0001.00"}
	good.BGP = &BGP{ASN: 65001}
	n := good.BGP.EnsureNeighbor(addr("10.0.0.1"))
	n.RemoteAS = 65002
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Device)
		want   string
	}{
		{"isis no net", func(d *Device) { d.ISIS = &ISIS{} }, "without a NET"},
		{"bgp no asn", func(d *Device) { d.BGP = &BGP{} }, "without local AS"},
		{"neighbor no remote-as", func(d *Device) {
			d.BGP.EnsureNeighbor(addr("10.0.0.2"))
		}, "no remote-as"},
		{"missing route map", func(d *Device) {
			nb, _ := d.BGP.Neighbor(addr("10.0.0.1"))
			nb.RouteMapOut = "GHOST"
		}, "undefined route-map"},
		{"ipv6 address", func(d *Device) {
			d.Interface("Ethernet1").Addresses = []netip.Prefix{netip.MustParsePrefix("2001:db8::1/64")}
		}, "non-IPv4"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := New("r1")
			d.Interface("Loopback0").Addresses = []netip.Prefix{pfx("1.1.1.1/32")}
			d.ISIS = &ISIS{NET: "49.0001.0000.0000.0001.00"}
			d.BGP = &BGP{ASN: 65001}
			nb := d.BGP.EnsureNeighbor(addr("10.0.0.1"))
			nb.RemoteAS = 65002
			tc.mutate(d)
			err := d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateDuplicateInterface(t *testing.T) {
	d := New("r1")
	d.Interfaces = append(d.Interfaces,
		&Interface{Name: "Ethernet1"}, &Interface{Name: "Ethernet1"})
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate interface") {
		t.Errorf("Validate = %v", err)
	}
}

func TestConnectedPrefixes(t *testing.T) {
	d := New("r1")
	d.Interface("Ethernet1").Addresses = []netip.Prefix{pfx("100.64.0.1/31")}
	d.Interface("Ethernet2").Addresses = []netip.Prefix{pfx("100.64.0.1/31")} // dup network
	d.Interface("Loopback0").Addresses = []netip.Prefix{pfx("2.2.2.1/32")}
	down := d.Interface("Ethernet3")
	down.Addresses = []netip.Prefix{pfx("10.9.9.1/24")}
	down.Shutdown = true
	got := d.ConnectedPrefixes()
	want := []netip.Prefix{pfx("2.2.2.1/32"), pfx("100.64.0.0/31")}
	if len(got) != len(want) {
		t.Fatalf("ConnectedPrefixes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ConnectedPrefixes[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnsureNeighborIdempotent(t *testing.T) {
	b := &BGP{ASN: 1}
	n1 := b.EnsureNeighbor(addr("10.0.0.1"))
	n2 := b.EnsureNeighbor(addr("10.0.0.1"))
	if n1 != n2 || len(b.Neighbors) != 1 {
		t.Error("EnsureNeighbor duplicated the neighbor")
	}
}

func TestPolicyEnv(t *testing.T) {
	d := New("r1")
	d.PrefixList("PL")
	env := d.PolicyEnv()
	if _, ok := env.PrefixList("PL"); !ok {
		t.Error("PolicyEnv missing defined prefix list")
	}
	if _, ok := env.PrefixList("NOPE"); ok {
		t.Error("PolicyEnv returned undefined prefix list")
	}
}

func TestRouteMapCreateOnReference(t *testing.T) {
	d := New("r1")
	rm := d.RouteMap("RM")
	if d.RouteMap("RM") != rm {
		t.Error("RouteMap did not return same object")
	}
}

func TestPrimaryAddress(t *testing.T) {
	i := &Interface{Name: "Ethernet1"}
	if _, ok := i.PrimaryAddress(); ok {
		t.Error("PrimaryAddress on empty interface")
	}
	i.Addresses = []netip.Prefix{pfx("10.0.0.1/24"), pfx("10.0.1.1/24")}
	p, ok := i.PrimaryAddress()
	if !ok || p != pfx("10.0.0.1/24") {
		t.Errorf("PrimaryAddress = %v,%v", p, ok)
	}
}
