// Package intern provides a process-wide string intern table. At 10k emulated
// routers the AFT layer materializes millions of small strings — prefixes,
// next-hop addresses, interface names — whose distinct population is tiny
// (every router on a LAN renders the same "10.3.17.0/31"). Interning collapses
// the copies to one canonical string per value, so each duplicate costs a
// 16-byte header instead of a fresh allocation.
//
// The table is sharded to keep contention negligible under the parallel AFT
// export and region-sharded convergence pools, and it never evicts: the
// population is bounded by the distinct prefixes/addresses/interfaces in the
// snapshot, which is exactly the state the run must hold anyway.
package intern

import "sync"

const shards = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var table [shards]shard

func init() {
	for i := range table {
		table[i].m = make(map[string]string)
	}
}

// fnv32 hashes s for shard selection (FNV-1a).
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// String returns the canonical copy of s. The first caller for a given value
// pays one map insert; every later caller gets the shared backing array.
func String(s string) string {
	if s == "" {
		return ""
	}
	sh := &table[fnv32(s)%shards]
	sh.mu.RLock()
	c, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[s]; !ok {
		c = s
		sh.m[s] = c
	}
	sh.mu.Unlock()
	return c
}

// Bytes returns the canonical string for b without allocating when the value
// is already interned (the map probe on a []byte key does not copy).
func Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := &table[fnv32b(b)%shards]
	sh.mu.RLock()
	c, ok := sh.m[string(b)] // no alloc: map probe special case
	sh.mu.RUnlock()
	if ok {
		return c
	}
	sh.mu.Lock()
	if c, ok = sh.m[string(b)]; !ok {
		c = string(b)
		sh.m[c] = c
	}
	sh.mu.Unlock()
	return c
}

func fnv32b(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// Len reports the number of interned strings, for tests and memory telemetry.
func Len() int {
	n := 0
	for i := range table {
		table[i].mu.RLock()
		n += len(table[i].m)
		table[i].mu.RUnlock()
	}
	return n
}
