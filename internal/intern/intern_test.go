package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// dataPtr exposes the backing-array pointer of a string so tests can assert
// two interned values actually share storage.
func dataPtr(s string) uintptr {
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}

func TestStringCanonicalizes(t *testing.T) {
	a := String(fmt.Sprintf("10.%d.0.0/16", 42))
	b := String(fmt.Sprintf("10.%d.0.0/16", 42))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if dataPtr(a) != dataPtr(b) {
		t.Fatal("interned copies do not share backing storage")
	}
	if String("") != "" {
		t.Fatal("empty string must intern to itself")
	}
}

func TestBytesMatchesString(t *testing.T) {
	s := String("192.0.2.0/24")
	if got := Bytes([]byte("192.0.2.0/24")); dataPtr(got) != dataPtr(s) {
		t.Fatal("Bytes and String returned different canonical copies")
	}
}

func TestConcurrentIntern(t *testing.T) {
	const workers, vals = 16, 200
	var wg sync.WaitGroup
	got := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, vals)
			for i := 0; i < vals; i++ {
				out[i] = String(fmt.Sprintf("concurrent-%d", i))
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < vals; i++ {
			if dataPtr(got[w][i]) != dataPtr(got[0][i]) {
				t.Fatalf("worker %d value %d not canonical", w, i)
			}
		}
	}
}
