package vrouter

import (
	"strings"
	"testing"
	"time"
)

func TestShowIPRoute(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	out := r.ShowIPRoute()
	for _, want := range []string{"show ip route", "C", "L", "S", "10.0.0.0/31",
		"1.1.1.1/32", "0.0.0.0/0", "null route"} {
		if !strings.Contains(out, want) {
			t.Errorf("ShowIPRoute missing %q:\n%s", want, out)
		}
	}
}

func TestShowWithoutProtocols(t *testing.T) {
	r, _ := build(t, baseCfg)
	if !strings.Contains(r.ShowISISDatabase(), "IS-IS is not running") {
		t.Error("missing not-running notice")
	}
	if !strings.Contains(r.ShowISISNeighbors(), "IS-IS is not running") {
		t.Error("missing not-running notice")
	}
	if !strings.Contains(r.ShowBGPSummary(), "BGP is not running") {
		t.Error("missing not-running notice")
	}
	if !strings.Contains(r.ShowMPLSTunnels(), "MPLS is not running") {
		t.Error("missing not-running notice")
	}
}

func TestShowBGPSummary(t *testing.T) {
	r, _ := build(t, baseCfg+"router bgp 65001\n   router-id 9.9.9.9\n   neighbor 10.0.0.1 remote-as 65002\n")
	out := r.ShowBGPSummary()
	for _, want := range []string{"local AS 65001", "router ID 9.9.9.9", "10.0.0.1", "65002", "Idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("ShowBGPSummary missing %q:\n%s", want, out)
		}
	}
}

func TestShowInterfaces(t *testing.T) {
	cfg := `hostname r1
router isis default
   net 49.0001.0000.0000.0001.00
interface Loopback0
   ip address 1.1.1.1/32
   isis enable default
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
   mpls ip
interface Ethernet2
   no switchport
   ip address 10.0.1.0/31
   shutdown
`
	r, _ := build(t, cfg)
	out := r.ShowInterfaces()
	for _, want := range []string{"Loopback0", "1.1.1.1/32", "isis,mpls", "down"} {
		if !strings.Contains(out, want) {
			t.Errorf("ShowInterfaces missing %q:\n%s", want, out)
		}
	}
}

func TestShowISISAfterStart(t *testing.T) {
	cfg := `hostname r1
router isis default
   net 49.0001.0000.0000.0001.00
interface Loopback0
   ip address 1.1.1.1/32
   isis enable default
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
`
	r, s := build(t, cfg)
	r.Start()
	s.RunFor(time.Second)
	db := r.ShowISISDatabase()
	if !strings.Contains(db, "IP 1.1.1.1/32") {
		t.Errorf("LSDB missing own prefix:\n%s", db)
	}
	nbrs := r.ShowISISNeighbors()
	if !strings.Contains(nbrs, "Ethernet1") || !strings.Contains(nbrs, "DOWN") {
		t.Errorf("neighbors output:\n%s", nbrs)
	}
}
