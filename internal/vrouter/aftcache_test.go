package vrouter

import (
	"testing"
	"time"

	"mfv/internal/routing"
)

// The AFT cache must serve repeated exports from the same immutable table
// while the FIB generation is unchanged, and RenderAFT must stay the
// cache-bypassing reference that always re-resolves.
func TestExportAFTCachedWhileClean(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	a1 := r.ExportAFT()
	if len(a1.IPv4Entries) == 0 {
		t.Fatal("converged router exported an empty AFT")
	}
	if !r.AFTCacheValid() {
		t.Error("cache invalid immediately after export")
	}
	if r.ExportAFT() != a1 {
		t.Error("re-export while clean rebuilt the AFT instead of reusing the cache")
	}
	ra := r.RenderAFT()
	if ra == a1 {
		t.Error("RenderAFT returned the cached table instead of re-rendering")
	}
	if !ra.Equal(a1) {
		t.Error("RenderAFT disagrees with the cached export")
	}
}

// A RIB mutation must bump the FIB generation and invalidate the cache; the
// next export reflects the new route.
func TestExportAFTInvalidatedByRIBChange(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	a1 := r.ExportAFT()
	gen := r.FIBGeneration()
	r.RIB().Install(routing.Route{
		Prefix:   pfx("198.51.100.0/24"),
		Protocol: routing.ProtoStatic,
		Distance: 1,
		NextHops: []routing.NextHop{{IP: addr("10.0.0.1")}},
	})
	if r.FIBGeneration() == gen {
		t.Fatal("RIB change did not bump the FIB generation")
	}
	if r.AFTCacheValid() {
		t.Error("cache still valid after a RIB change")
	}
	a2 := r.ExportAFT()
	if a2 == a1 {
		t.Fatal("export after a RIB change returned the stale cached AFT")
	}
	found := false
	for _, e := range a2.IPv4Entries {
		if e.Prefix == "198.51.100.0/24" {
			found = true
		}
	}
	if !found {
		t.Error("new route missing from the re-rendered AFT")
	}
	if !r.AFTCacheValid() {
		t.Error("cache not revalidated by the re-export")
	}
}

// Shutdown gates the forwarding plane off; a cached pre-shutdown AFT must
// not leak into any later export (the stale-snapshot hazard ISSUE 4 calls
// out), and the generation must move even though no route was withdrawn.
func TestExportAFTShutdownDropsStaleCache(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	a1 := r.ExportAFT()
	if len(a1.IPv4Entries) == 0 {
		t.Fatal("converged router exported an empty AFT")
	}
	gen := r.FIBGeneration()
	r.Shutdown()
	if r.FIBGeneration() == gen {
		t.Fatal("Shutdown did not move the FIB generation")
	}
	if r.AFTCacheValid() {
		t.Error("pre-shutdown cache still valid")
	}
	a2 := r.ExportAFT()
	if len(a2.IPv4Entries) != 0 {
		t.Fatalf("shutdown router exported %d stale entries", len(a2.IPv4Entries))
	}
	if r.ExportAFT() != a2 {
		t.Error("empty post-shutdown AFT not cached")
	}
}
