package vrouter

import (
	"fmt"
	"sort"
	"strings"

	"mfv/internal/routing"
)

// This file renders operator-style "show" output for the emulated router.
// The paper's §5 calls out that poking at the control plane with familiar
// tooling (inspecting RIBs, IS-IS databases, BGP summaries) is a core
// benefit of emulation over models; these are the emulated equivalents of
// the CLI commands its authors used while debugging their configs.

// ShowIPRoute renders the RIB like "show ip route".
func (r *Router) ShowIPRoute() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip route\n", r.Name)
	codes := map[routing.Protocol]string{
		routing.ProtoConnected: "C",
		routing.ProtoLocal:     "L",
		routing.ProtoStatic:    "S",
		routing.ProtoTE:        "T",
		routing.ProtoISIS:      "I",
		routing.ProtoEBGP:      "B E",
		routing.ProtoIBGP:      "B I",
	}
	for _, rt := range r.rib.Routes() {
		code := codes[rt.Protocol]
		if code == "" {
			code = "?"
		}
		fmt.Fprintf(&b, " %-3s %-18s [%d/%d]", code, rt.Prefix, rt.Distance, rt.Metric)
		if rt.Drop {
			b.WriteString(" is a null route")
		}
		for _, nh := range rt.NextHops {
			if nh.IP.IsValid() {
				fmt.Fprintf(&b, " via %s", nh.IP)
			}
			if nh.Interface != "" {
				fmt.Fprintf(&b, ", %s", nh.Interface)
			}
			if len(nh.LabelStack) > 0 {
				fmt.Fprintf(&b, ", label %v", nh.LabelStack)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ShowISISDatabase renders the LSDB like "show isis database".
func (r *Router) ShowISISDatabase() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show isis database\n", r.Name)
	if r.ISIS == nil {
		b.WriteString(" IS-IS is not running\n")
		return b.String()
	}
	fmt.Fprintf(&b, " %-16s %-10s %-6s %s\n", "LSPID", "Hostname", "Seq", "Contents")
	for _, lsp := range r.ISIS.LSDB() {
		var contents []string
		for _, n := range lsp.Neighbors {
			contents = append(contents, fmt.Sprintf("IS %s metric %d", n.ID, n.Metric))
		}
		for _, p := range lsp.Prefixes {
			contents = append(contents, fmt.Sprintf("IP %s", p.Prefix))
		}
		fmt.Fprintf(&b, " %-16s %-10s %-6d %s\n",
			lsp.Origin, lsp.Hostname, lsp.Seq, strings.Join(contents, "; "))
	}
	return b.String()
}

// ShowISISNeighbors renders adjacency state like "show isis neighbors".
func (r *Router) ShowISISNeighbors() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show isis neighbors\n", r.Name)
	if r.ISIS == nil {
		b.WriteString(" IS-IS is not running\n")
		return b.String()
	}
	fmt.Fprintf(&b, " %-14s %-16s %s\n", "Interface", "System Id", "State")
	for _, a := range r.ISIS.Adjacencies() {
		state := "DOWN"
		if a.Up {
			state = "UP"
		}
		fmt.Fprintf(&b, " %-14s %-16s %s\n", a.Interface, a.Neighbor, state)
	}
	return b.String()
}

// ShowBGPSummary renders session state like "show ip bgp summary".
func (r *Router) ShowBGPSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip bgp summary\n", r.Name)
	if r.BGP == nil {
		b.WriteString(" BGP is not running\n")
		return b.String()
	}
	fmt.Fprintf(&b, " local AS %d, router ID %s\n", r.BGP.ASN(), r.BGP.RouterID())
	fmt.Fprintf(&b, " %-16s %-8s %-12s %10s %10s\n", "Neighbor", "AS", "State", "MsgRcvd", "PfxRcvd")
	for _, p := range r.BGP.Peers() {
		cfg := p.Config()
		fmt.Fprintf(&b, " %-16s %-8d %-12s %10d %10d\n",
			cfg.Addr, cfg.RemoteAS, p.State(), p.MsgsIn, p.PrefixesReceived)
	}
	fmt.Fprintf(&b, " %d prefixes in Loc-RIB\n", r.BGP.LocRIBSize())
	return b.String()
}

// ShowMPLSTunnels renders head-end tunnel state.
func (r *Router) ShowMPLSTunnels() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show mpls tunnels\n", r.Name)
	if r.MPLS == nil {
		b.WriteString(" MPLS is not running\n")
		return b.String()
	}
	for _, l := range r.MPLS.LSPs() {
		state := "down"
		if l.Up {
			state = "up"
		}
		fmt.Fprintf(&b, " %-20s to %-14s %-5s", l.Name, l.To, state)
		if l.Up {
			hops := make([]string, len(l.Hops))
			for i, h := range l.Hops {
				hops[i] = h.String()
			}
			fmt.Fprintf(&b, " out-label %d path %s", l.OutLabel, strings.Join(hops, " > "))
		}
		b.WriteByte('\n')
	}
	for _, xc := range r.MPLS.CrossConnects() {
		action := fmt.Sprintf("swap %d", xc.OutLabel)
		if xc.OutLabel == 0 {
			action = "pop"
		}
		fmt.Fprintf(&b, " ILM %d -> %s via %s (%s)\n", xc.InLabel, action, xc.NextHop, xc.LSPName)
	}
	return b.String()
}

// ShowInterfaces renders interface state like "show ip interface brief".
func (r *Router) ShowInterfaces() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s# show ip interface brief\n", r.Name)
	names := make([]string, 0, len(r.ifaces))
	for name := range r.ifaces {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, " %-14s %-20s %-8s %s\n", "Interface", "IP Address", "Status", "Protocols")
	for _, name := range names {
		iface := r.ifaces[name]
		addr := "unassigned"
		if len(iface.Cfg.Addresses) > 0 {
			addr = iface.Cfg.Addresses[0].String()
		}
		status := "up"
		if iface.Cfg.Shutdown || !iface.Up {
			status = "down"
		}
		var protos []string
		if iface.Cfg.ISISEnabled {
			protos = append(protos, "isis")
		}
		if iface.Cfg.MPLSEnabled {
			protos = append(protos, "mpls")
		}
		fmt.Fprintf(&b, " %-14s %-20s %-8s %s\n", name, addr, status, strings.Join(protos, ","))
	}
	return b.String()
}
