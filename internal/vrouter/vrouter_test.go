package vrouter

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"mfv/internal/bgp"
	"mfv/internal/config/eos"
	"mfv/internal/policy"
	"mfv/internal/routing"
	"mfv/internal/sim"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func build(t *testing.T, cfg string) (*Router, *sim.Simulator) {
	t.Helper()
	dev, _, err := eos.Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	r, err := New(dev.Hostname, dev, EOSProfile, s)
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

const baseCfg = `hostname r1
interface Loopback0
   ip address 1.1.1.1/32
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
ip route 0.0.0.0/0 10.0.0.1
ip route 203.0.113.0/24 Null0
`

func TestStartInstallsRoutes(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	rib := r.RIB()
	// Loopback /32 must be local (receive), not connected.
	rt, ok := rib.Get(pfx("1.1.1.1/32"))
	if !ok || rt.Protocol != routing.ProtoLocal {
		t.Errorf("loopback route = %v, %v", rt, ok)
	}
	if rt, ok := rib.Get(pfx("10.0.0.0/31")); !ok || rt.Protocol != routing.ProtoConnected {
		t.Errorf("connected = %v, %v", rt, ok)
	}
	if rt, ok := rib.Get(pfx("0.0.0.0/0")); !ok || rt.Protocol != routing.ProtoStatic {
		t.Errorf("static = %v, %v", rt, ok)
	}
	if rt, ok := rib.Get(pfx("203.0.113.0/24")); !ok || !rt.Drop {
		t.Errorf("null route = %v, %v", rt, ok)
	}
}

func TestOwnsAddrAndLocalAddrs(t *testing.T) {
	r, _ := build(t, baseCfg)
	if !r.OwnsAddr(addr("1.1.1.1")) || !r.OwnsAddr(addr("10.0.0.0")) {
		t.Error("OwnsAddr false for own address")
	}
	if r.OwnsAddr(addr("10.0.0.1")) {
		t.Error("OwnsAddr true for peer address")
	}
	las := r.LocalAddrs()
	if len(las) != 2 || las[0] != addr("1.1.1.1") {
		t.Errorf("LocalAddrs = %v", las)
	}
}

func TestRouterIDSelection(t *testing.T) {
	// Explicit router-id wins.
	r, _ := build(t, baseCfg+"router bgp 65001\n   router-id 9.9.9.9\n   neighbor 10.0.0.1 remote-as 65002\n")
	if r.BGP.RouterID() != addr("9.9.9.9") {
		t.Errorf("RouterID = %v", r.BGP.RouterID())
	}
	// Without explicit id, the highest loopback wins.
	r2, _ := build(t, `hostname r2
interface Loopback0
   ip address 1.1.1.1/32
interface Loopback1
   ip address 5.5.5.5/32
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
`)
	if r2.BGP.RouterID() != addr("5.5.5.5") {
		t.Errorf("RouterID = %v, want highest loopback", r2.BGP.RouterID())
	}
}

func TestBGPLocalAddrResolution(t *testing.T) {
	cfg := `hostname r1
interface Loopback0
   ip address 1.1.1.1/32
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   neighbor 7.7.7.7 remote-as 65001
   neighbor 7.7.7.7 update-source Loopback0
`
	r, _ := build(t, cfg)
	direct, _ := r.BGP.Peer(addr("10.0.0.1"))
	if direct.Config().LocalAddr != addr("10.0.0.0") {
		t.Errorf("direct session local = %v", direct.Config().LocalAddr)
	}
	lo, _ := r.BGP.Peer(addr("7.7.7.7"))
	if lo.Config().LocalAddr != addr("1.1.1.1") {
		t.Errorf("update-source session local = %v", lo.Config().LocalAddr)
	}
}

func TestBGPUpdateSourceWithoutAddressFails(t *testing.T) {
	cfg := `hostname r1
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   neighbor 7.7.7.7 remote-as 65001
   neighbor 7.7.7.7 update-source Loopback9
`
	dev, _, err := eos.Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("r1", dev, EOSProfile, sim.New(1)); err == nil ||
		!strings.Contains(err.Error(), "update-source") {
		t.Errorf("err = %v", err)
	}
}

func TestShutNeighborNotConfigured(t *testing.T) {
	cfg := baseCfg + `router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.0.1 shutdown
`
	r, _ := build(t, cfg)
	if _, ok := r.BGP.Peer(addr("10.0.0.1")); ok {
		t.Error("shutdown neighbor was instantiated")
	}
}

func TestForwardingInterfaceAndCanReach(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	intf, adj, ok := r.ForwardingInterface(addr("8.8.8.8"))
	if !ok || intf != "Ethernet1" || adj != addr("10.0.0.1") {
		t.Errorf("ForwardingInterface = %q %v %v", intf, adj, ok)
	}
	// Own address: local delivery, not forwarded.
	if _, _, ok := r.ForwardingInterface(addr("1.1.1.1")); ok {
		t.Error("own address reported as forwarded")
	}
	// Null-routed: not forwarded.
	if _, _, ok := r.ForwardingInterface(addr("203.0.113.5")); ok {
		t.Error("null-routed address reported as forwarded")
	}
	if !r.CanReach(addr("8.8.8.8")) || !r.CanReach(addr("1.1.1.1")) {
		t.Error("CanReach false for reachable addresses")
	}
	if r.CanReach(addr("203.0.113.5")) {
		t.Error("CanReach true for null-routed address")
	}
}

func TestShutdownInterfaceInstallsNothing(t *testing.T) {
	cfg := `hostname r1
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   shutdown
`
	r, s := build(t, cfg)
	r.Start()
	s.RunFor(time.Second)
	if r.RIB().Len() != 0 {
		t.Errorf("shut interface produced routes: %v", r.RIB().Routes())
	}
}

func TestCrashOnOversizedCommunities(t *testing.T) {
	cfg := `hostname r2
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
router bgp 65002
   neighbor 10.0.0.0 remote-as 65001
`
	dev, _, err := eos.Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	r, err := New("r2", dev, JunosLikeProfile, s)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	var comms []policy.Community
	for i := 0; i < 100; i++ {
		comms = append(comms, policy.Community(i))
	}
	killer := bgp.EncodeUpdate(bgp.Update{
		Attrs: &bgp.PathAttrs{NextHop: addr("10.0.0.0"), Communities: comms},
		NLRI:  []netip.Prefix{pfx("66.0.0.0/8")},
	})
	r.DeliverBGP(addr("10.0.0.0"), killer)
	s.RunFor(time.Second) // delivery is paced through the processing model
	if r.CrashCount != 1 || !r.Crashed() {
		t.Fatalf("CrashCount = %d crashed=%v", r.CrashCount, r.Crashed())
	}
	// While crashed, traffic is ignored.
	r.DeliverBGP(addr("10.0.0.0"), killer)
	s.RunFor(time.Second)
	if r.CrashCount != 1 {
		t.Error("crashed router processed another update")
	}
	// The supervisor restarts it.
	s.RunFor(time.Minute)
	if r.Crashed() {
		t.Error("router did not restart")
	}
	// A benign update under the limit does not crash.
	ok := bgp.EncodeUpdate(bgp.Update{
		Attrs: &bgp.PathAttrs{NextHop: addr("10.0.0.0")},
		NLRI:  []netip.Prefix{pfx("55.0.0.0/8")},
	})
	r.DeliverBGP(addr("10.0.0.0"), ok)
	s.RunFor(time.Second)
	if r.CrashCount != 1 {
		t.Error("benign update crashed the router")
	}
}

func TestEOSProfileUnlimitedCommunities(t *testing.T) {
	r, s := build(t, baseCfg+"router bgp 65001\n   neighbor 10.0.0.1 remote-as 65002\n")
	var comms []policy.Community
	for i := 0; i < 200; i++ {
		comms = append(comms, policy.Community(i))
	}
	killer := bgp.EncodeUpdate(bgp.Update{
		Attrs: &bgp.PathAttrs{NextHop: addr("10.0.0.1"), Communities: comms},
		NLRI:  []netip.Prefix{pfx("66.0.0.0/8")},
	})
	r.DeliverBGP(addr("10.0.0.1"), killer)
	s.RunFor(time.Second)
	if r.CrashCount != 0 {
		t.Error("EOS profile crashed on large community list")
	}
}

func TestProfileFor(t *testing.T) {
	if ProfileFor("eos").Name != "eos" || ProfileFor("junoslike").Name != "junoslike" {
		t.Error("ProfileFor wrong")
	}
	if ProfileFor("other").Name != "eos" {
		t.Error("unknown vendor should default to eos profile")
	}
}

func TestExportAFTValidates(t *testing.T) {
	r, s := build(t, baseCfg)
	r.Start()
	s.RunFor(time.Second)
	a := r.ExportAFT()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.IPv4Entries) == 0 {
		t.Error("empty AFT")
	}
}

func TestAttachLinkUnconfiguredInterface(t *testing.T) {
	r, _ := build(t, baseCfg)
	// Wiring a port that exists physically but has no config must not
	// panic and must be detachable.
	r.AttachLink("Ethernet9", func([]byte) {})
	r.DetachLink("Ethernet9")
	r.DetachLink("Ethernet10") // unknown: no-op
	r.HandleLinkFrame("Ethernet10", []byte{1, 2, 3})
}
