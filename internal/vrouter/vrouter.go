// Package vrouter implements the virtual router: the element that plays the
// role of a vendor's containerized router image in the paper's pipeline. It
// binds parsed device intent (internal/config/ir) to real protocol engines —
// BGP, IS-IS, RSVP-TE — over emulated interfaces, maintains the RIB/FIB, and
// exports the converged AFT through the management plane.
//
// Vendor behaviour profiles capture implementation-specific quirks (RSVP
// timer profiles, BGP update validation limits) so multi-vendor topologies
// can exhibit the interplay bugs the paper argues only emulation can catch.
package vrouter

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"mfv/internal/aft"
	"mfv/internal/bgp"
	"mfv/internal/config/ir"
	"mfv/internal/dataplane"
	"mfv/internal/isis"
	"mfv/internal/mpls"
	"mfv/internal/obs"
	"mfv/internal/routing"
	"mfv/internal/sim"
)

// Profile captures vendor-implementation behaviour that differs between
// router OSes.
type Profile struct {
	// Name labels the vendor ("eos", "junoslike").
	Name string
	// RSVPTimers is the vendor's RSVP-TE soft-state profile.
	RSVPTimers mpls.Timers
	// MaxCommunities is the largest community count the BGP implementation
	// tolerates in one UPDATE; an update exceeding it crashes the routing
	// process (reproducing the vendor-interplay outage class from the
	// paper). Zero means unlimited.
	MaxCommunities int
	// BootTime is the simulated container start-to-ready time.
	BootTime time.Duration
	// RouteProcPerSec is the control plane's BGP route-processing
	// throughput (prefixes per second of virtual time). Inbound UPDATEs
	// are paced at this rate, which is what makes convergence time scale
	// with injected table size as the paper observes. The shipped rates
	// are scaled 10× down together with the experiment feed sizes
	// (DESIGN.md documents the substitution), preserving the convergence
	// shape at laptop-friendly simulation cost.
	RouteProcPerSec int
}

// Profiles for the two shipped dialects.
var (
	// EOSProfile mirrors the paper's Arista cEOS evaluation target:
	// 0.5 vCPU / 1 GB per container, fast RSVP timers.
	EOSProfile = Profile{
		Name:            "eos",
		RSVPTimers:      mpls.DefaultTimers(),
		MaxCommunities:  0,
		BootTime:        90 * time.Second,
		RouteProcPerSec: 1200,
	}
	// JunosLikeProfile uses slow RSVP timers and a bounded community
	// parser, the combination behind the interplay pathologies in §2.
	JunosLikeProfile = Profile{
		Name:            "junoslike",
		RSVPTimers:      mpls.SlowTimers(),
		MaxCommunities:  64,
		BootTime:        150 * time.Second,
		RouteProcPerSec: 900,
	}
)

// ProfileFor returns the vendor profile by dialect name.
func ProfileFor(vendor string) Profile {
	if vendor == "junoslike" {
		return JunosLikeProfile
	}
	return EOSProfile
}

// Iface is a runtime interface: configuration plus link state.
type Iface struct {
	Cfg  *ir.Interface
	Up   bool
	send func([]byte) // frames out this port; nil when unwired
}

// Router is one virtual router instance.
type Router struct {
	Name    string
	Profile Profile
	dev     *ir.Device
	clock   *sim.Simulator

	rib *routing.RIB
	fib *dataplane.FIB

	ifaces map[string]*Iface

	ISIS *isis.Engine
	BGP  *bgp.Speaker
	MPLS *mpls.Engine

	// SendToAddr delivers a payload to the router owning addr, routed
	// hop-by-hop by the substrate (assigned by the orchestrator). Used by
	// BGP sessions and RSVP signaling.
	SendToAddr func(dst netip.Addr, payload []byte)

	// onStateChange, when set, is invoked after any RIB change settles;
	// the orchestrator uses it for convergence tracking.
	onStateChange func()

	// OnQuarantine, when set, is invoked after the router quarantines
	// itself (hostile input or an escaped handler panic); the orchestrator
	// uses it to mark the pod contained without rescheduling it.
	OnQuarantine func(reason string)

	ribDirty    *sim.Event
	crashed     bool
	down        bool
	quarantined bool
	CrashCount  int
	// busyUntil is the virtual time the BGP process finishes its queued
	// work; inbound updates are paced behind it.
	busyUntil time.Duration
	// nhState caches the last observed resolution of each BGP next hop, so
	// post-RIB-change revalidation is O(distinct next hops).
	nhState map[netip.Addr]nhResolution

	// localAddrs/localSet cache the interface address set. A router's
	// configured addresses never change over its lifetime (a config change
	// builds a replacement Router), and OwnsAddr sits on the per-packet
	// delivery path, so the nested interface scan is hoisted to New.
	localAddrs []netip.Addr
	localSet   map[netip.Addr]bool

	// aftCache holds the last rendered AFT and the FIB generation it was
	// rendered at; ExportAFT reuses it while the generation is unchanged.
	aftCache *aft.AFT
	aftGen   uint64

	// Observability (nil handles are no-ops).
	obs          *obs.Observer
	hFIBNanos    *obs.Histogram
	cCrashes     *obs.Counter
	cQuarantined *obs.Counter
}

type nhResolution struct {
	metric uint32
	ok     bool
}

// New builds a router from parsed intent. The router is inert until Start.
func New(name string, dev *ir.Device, profile Profile, clock *sim.Simulator) (*Router, error) {
	r := &Router{
		Name:    name,
		Profile: profile,
		dev:     dev,
		clock:   clock,
		rib:     routing.NewRIB(),
		ifaces:  map[string]*Iface{},
		nhState: map[netip.Addr]nhResolution{},
	}
	for _, intf := range dev.Interfaces {
		r.ifaces[intf.Name] = &Iface{Cfg: intf, Up: !intf.Shutdown}
		for _, p := range intf.Addresses {
			r.localAddrs = append(r.localAddrs, p.Addr())
		}
	}
	sort.Slice(r.localAddrs, func(i, j int) bool { return r.localAddrs[i].Less(r.localAddrs[j]) })
	r.localSet = make(map[netip.Addr]bool, len(r.localAddrs))
	for _, a := range r.localAddrs {
		r.localSet[a] = true
	}
	if err := r.buildProtocols(); err != nil {
		return nil, err
	}
	r.rib.OnChange(func(netip.Prefix, *routing.Route) { r.scheduleRIBSettled() })
	return r, nil
}

// SetObserver wires the router and its protocol engines into the
// observability layer. Call before Start so session and adjacency
// transitions are traced from the first event.
func (r *Router) SetObserver(o *obs.Observer) {
	r.obs = o
	r.hFIBNanos = o.Histogram("fib_recompute_ns")
	r.cCrashes = o.Counter("bgp_crashes_total")
	r.cQuarantined = o.Counter("vrouter_quarantined_total")
	if r.BGP != nil {
		r.BGP.SetObserver(o)
	}
	if r.ISIS != nil {
		r.ISIS.SetObserver(o)
	}
}

// Device returns the parsed intent the router runs.
func (r *Router) Device() *ir.Device { return r.dev }

// RIB exposes the routing table for inspection (the emulated "show ip
// route").
func (r *Router) RIB() *routing.RIB { return r.rib }

// LocalAddrs returns every configured interface address, sorted.
func (r *Router) LocalAddrs() []netip.Addr {
	return append([]netip.Addr(nil), r.localAddrs...)
}

// OwnsAddr reports whether addr is one of this router's interface addresses.
func (r *Router) OwnsAddr(a netip.Addr) bool { return r.localSet[a] }

// routerID picks the BGP router ID: explicit config, else the numerically
// highest loopback address, else the highest interface address.
func (r *Router) routerID() netip.Addr {
	if r.dev.BGP != nil && r.dev.BGP.RouterID.IsValid() {
		return r.dev.BGP.RouterID
	}
	var bestLo, best netip.Addr
	for _, intf := range r.dev.Interfaces {
		for _, p := range intf.Addresses {
			if isLoopback(intf.Name) {
				if !bestLo.IsValid() || bestLo.Less(p.Addr()) {
					bestLo = p.Addr()
				}
			}
			if !best.IsValid() || best.Less(p.Addr()) {
				best = p.Addr()
			}
		}
	}
	if bestLo.IsValid() {
		return bestLo
	}
	return best
}

func isLoopback(name string) bool {
	return strings.HasPrefix(name, "Loopback") || strings.HasPrefix(name, "lo")
}

func (r *Router) buildProtocols() error {
	if r.dev.ISIS != nil {
		if err := r.buildISIS(); err != nil {
			return err
		}
	}
	if r.dev.BGP != nil {
		if err := r.buildBGP(); err != nil {
			return err
		}
	}
	if r.dev.MPLS != nil && (r.dev.MPLS.Enabled || r.dev.MPLS.TE || len(r.dev.MPLS.LSPs) > 0) {
		// "mpls ip" alone runs the RSVP process so the node can act as an
		// LSP transit, exactly as on real devices.
		r.buildMPLS()
	}
	return nil
}

func (r *Router) buildISIS() error {
	sysIDStr, err := r.dev.ISIS.SystemID()
	if err != nil {
		return fmt.Errorf("vrouter %s: %w", r.Name, err)
	}
	sysID, err := isis.ParseSystemID(sysIDStr)
	if err != nil {
		return fmt.Errorf("vrouter %s: %w", r.Name, err)
	}
	eng := isis.New(isis.Config{
		SystemID: sysID,
		Hostname: r.Name,
		Clock:    r.clock,
		OnRoutes: r.installISISRoutes,
	})
	for _, intf := range r.dev.Interfaces {
		if !intf.ISISEnabled || intf.Shutdown {
			continue
		}
		addr, ok := intf.PrimaryAddress()
		if !ok {
			continue // IS-IS on an addressless interface is inert
		}
		var prefixes []netip.Prefix
		for _, p := range intf.Addresses {
			prefixes = append(prefixes, p.Masked())
		}
		eng.AddInterface(isis.InterfaceConfig{
			Name:     intf.Name,
			Addr:     addr.Addr(),
			Prefixes: prefixes,
			Metric:   intf.ISISMetric,
			Passive:  intf.ISISPassive || isLoopback(intf.Name) || r.dev.ISIS.PassiveDefault,
		})
	}
	r.ISIS = eng
	return nil
}

func (r *Router) installISISRoutes(routes []isis.Route) {
	r.rib.WithdrawAll(routing.ProtoISIS)
	for _, rt := range routes {
		hops := make([]routing.NextHop, len(rt.NextHops))
		for i, h := range rt.NextHops {
			hops[i] = routing.NextHop{IP: h.IP, Interface: h.Interface}
		}
		r.rib.Install(routing.Route{
			Prefix:   rt.Prefix,
			Protocol: routing.ProtoISIS,
			Distance: routing.ProtoISIS.DefaultDistance(),
			Metric:   rt.Metric,
			NextHops: hops,
		})
	}
}

func (r *Router) buildBGP() error {
	cfg := r.dev.BGP
	spk := bgp.NewSpeaker(bgp.Config{
		Hostname: r.Name,
		ASN:      cfg.ASN,
		RouterID: r.routerID(),
		Clock:    r.clock,
		Resolver: bgp.ResolverFunc(func(nh netip.Addr) (uint32, bool) {
			if r.OwnsAddr(nh) {
				return 0, true
			}
			rt, ok := r.rib.Lookup(nh)
			if !ok || rt.Drop {
				return 0, false
			}
			return rt.Metric, true
		}),
		OnBestChange: r.installBGPRoute,
	})
	env := r.dev.PolicyEnv()
	for _, n := range cfg.Neighbors {
		if n.Shutdown {
			continue
		}
		local, err := r.bgpLocalAddr(n)
		if err != nil {
			return err
		}
		pc := bgp.PeerConfig{
			Addr:          n.Addr,
			LocalAddr:     local,
			RemoteAS:      n.RemoteAS,
			NextHopSelf:   n.NextHopSelf,
			RRClient:      n.RouteReflectorClient,
			SendCommunity: n.SendCommunity,
			Env:           env,
		}
		if n.RouteMapIn != "" {
			pc.ImportPolicy = r.dev.RouteMaps[n.RouteMapIn]
		}
		if n.RouteMapOut != "" {
			pc.ExportPolicy = r.dev.RouteMaps[n.RouteMapOut]
		}
		spk.AddPeer(pc)
	}
	r.BGP = spk
	return nil
}

// bgpLocalAddr determines the session source address for a neighbor:
// update-source interface when configured, otherwise the interface sharing
// a subnet with the neighbor, otherwise the router ID.
func (r *Router) bgpLocalAddr(n *ir.Neighbor) (netip.Addr, error) {
	if n.UpdateSource != "" {
		intf := r.ifaces[n.UpdateSource]
		if intf == nil || len(intf.Cfg.Addresses) == 0 {
			return netip.Addr{}, fmt.Errorf("vrouter %s: neighbor %v update-source %s has no address",
				r.Name, n.Addr, n.UpdateSource)
		}
		return intf.Cfg.Addresses[0].Addr(), nil
	}
	for _, intf := range r.dev.Interfaces {
		for _, p := range intf.Addresses {
			if p.Masked().Contains(n.Addr) {
				return p.Addr(), nil
			}
		}
	}
	id := r.routerID()
	if !id.IsValid() {
		return netip.Addr{}, fmt.Errorf("vrouter %s: cannot determine local address for neighbor %v", r.Name, n.Addr)
	}
	return id, nil
}

func (r *Router) installBGPRoute(prefix netip.Prefix, p *bgp.Path) {
	// Withdraw both protocol slots; the winner reinstalls one of them.
	proto := routing.ProtoIBGP
	if p != nil && !p.FromIBGP {
		proto = routing.ProtoEBGP
	}
	if p == nil || p.Local {
		r.rib.Withdraw(prefix, routing.ProtoEBGP)
		r.rib.Withdraw(prefix, routing.ProtoIBGP)
		return
	}
	other := routing.ProtoEBGP
	if proto == routing.ProtoEBGP {
		other = routing.ProtoIBGP
	}
	r.rib.Withdraw(prefix, other)
	r.rib.Install(routing.Route{
		Prefix:   prefix,
		Protocol: proto,
		Distance: proto.DefaultDistance(),
		NextHops: []routing.NextHop{{IP: p.Attrs.NextHop}},
	})
}

func (r *Router) buildMPLS() {
	rid := r.routerID()
	eng := mpls.New(mpls.Config{
		RouterID: rid,
		Clock:    r.clock,
		Timers:   r.Profile.RSVPTimers,
		Resolver: mpls.HopResolverFunc(func(dst netip.Addr) (netip.Addr, bool) {
			return r.adjacentHopToward(dst)
		}),
		Forward: func(dst netip.Addr, data []byte) {
			if r.SendToAddr != nil {
				r.SendToAddr(dst, data)
			}
		},
		OnLSPChange: r.installTunnelRoute,
	})
	r.MPLS = eng
}

// adjacentHopToward resolves dst to the immediate adjacent router address.
func (r *Router) adjacentHopToward(dst netip.Addr) (netip.Addr, bool) {
	rt, ok := r.rib.Lookup(dst)
	if !ok || rt.Drop || len(rt.NextHops) == 0 {
		return netip.Addr{}, false
	}
	hops, err := r.ensureFIB().Resolve(rt)
	if err != nil || len(hops) == 0 {
		return netip.Addr{}, false
	}
	h := hops[0]
	if h.Drop || h.Receive {
		return netip.Addr{}, false
	}
	if h.IP.IsValid() {
		return h.IP, true
	}
	// Directly attached destination (e.g. /31 peer): dst itself is adjacent.
	return dst, true
}

func (r *Router) installTunnelRoute(l mpls.LSPState) {
	prefix := netip.PrefixFrom(l.To, 32)
	if !l.Up {
		r.rib.Withdraw(prefix, routing.ProtoTE)
		return
	}
	r.rib.Install(routing.Route{
		Prefix:   prefix,
		Protocol: routing.ProtoTE,
		Distance: routing.ProtoTE.DefaultDistance(),
		NextHops: []routing.NextHop{{IP: l.NextHop, LabelStack: []uint32{l.OutLabel}}},
	})
}

// Start boots the router: installs connected/local/static routes, starts
// protocol engines, and signals configured tunnels.
func (r *Router) Start() {
	r.installConnected()
	r.installStatics()
	if r.ISIS != nil {
		r.ISIS.Start()
	}
	if r.MPLS != nil {
		r.MPLS.Start()
		for _, lsp := range r.dev.MPLS.LSPs {
			r.MPLS.Signal(lsp.Name+"@"+r.Name, lsp.To)
		}
	}
	if r.BGP != nil {
		r.originateBGP()
	}
}

// Stop cancels protocol timers.
func (r *Router) Stop() {
	if r.ISIS != nil {
		r.ISIS.Stop()
	}
	if r.MPLS != nil {
		r.MPLS.Stop()
	}
	if r.BGP != nil {
		for _, p := range r.BGP.Peers() {
			p.TransportDown()
		}
	}
}

// Shutdown makes the router permanently inert, modelling the pod dying: all
// protocol timers are canceled, sessions torn down, and every inbound and
// dataplane path gated off. A shutdown router is never restarted — the
// orchestrator builds a fresh Router when the replacement pod boots, exactly
// as Kubernetes restarts a container from its image.
func (r *Router) Shutdown() {
	if r.down {
		return
	}
	r.down = true
	r.onStateChange = nil
	r.Stop()
	if r.ribDirty != nil {
		r.clock.Cancel(r.ribDirty)
		r.ribDirty = nil
	}
}

// Quarantine permanently contains the router's control plane: hostile input
// (corrupted config, an undecodable AFT, a handler panic) made this router
// untrustworthy, so it is shut down exactly like a dead pod — neighbors see
// the session drop, its AFT goes empty — but, unlike a crash, it is NOT
// rescheduled: restarting it would just replay the hostile input. The
// containment boundary is one router; the run completes degraded.
func (r *Router) Quarantine(reason string) {
	if r.quarantined || r.down {
		return
	}
	r.quarantined = true
	r.cQuarantined.Inc()
	if r.obs.Enabled() {
		r.obs.Emit(obs.Event{Type: obs.EvQuarantine, Device: r.Name, Detail: reason})
	}
	cb := r.OnQuarantine
	r.Shutdown()
	if cb != nil {
		cb(reason)
	}
}

// Quarantined reports whether the router has been quarantined.
func (r *Router) Quarantined() bool { return r.quarantined }

// guard is the per-router crash containment boundary: a panic escaping an
// input handler quarantines this one router instead of unwinding the whole
// simulation. Deferred at every entry point that processes external input.
func (r *Router) guard(source string) {
	if p := recover(); p != nil {
		r.Quarantine(fmt.Sprintf("panic in %s handler: %v", source, p))
	}
}

func (r *Router) installConnected() {
	for _, intf := range r.dev.Interfaces {
		iface := r.ifaces[intf.Name]
		if intf.Shutdown || (iface != nil && !iface.Up) {
			continue
		}
		for _, p := range intf.Addresses {
			// A /32 interface prefix (loopbacks) is pure local delivery;
			// installing it also as connected would shadow the local route
			// and export a forwarding entry out an unwired port.
			if p.Bits() < 32 {
				r.rib.Install(routing.Route{
					Prefix:   p.Masked(),
					Protocol: routing.ProtoConnected,
					NextHops: []routing.NextHop{{Interface: intf.Name}},
				})
			}
			r.rib.Install(routing.Route{
				Prefix:   netip.PrefixFrom(p.Addr(), 32),
				Protocol: routing.ProtoLocal,
				NextHops: []routing.NextHop{{Interface: intf.Name}},
			})
		}
	}
}

func (r *Router) installStatics() {
	for _, s := range r.dev.Statics {
		dist := s.Distance
		if dist == 0 {
			dist = routing.ProtoStatic.DefaultDistance()
		}
		rt := routing.Route{
			Prefix:   s.Prefix,
			Protocol: routing.ProtoStatic,
			Distance: dist,
			Drop:     s.Drop,
		}
		if !s.Drop {
			rt.NextHops = []routing.NextHop{{IP: s.NextHop, Interface: s.Interface}}
		}
		r.rib.Install(rt)
	}
}

// originateBGP injects network statements and redistributed routes.
func (r *Router) originateBGP() {
	for _, p := range r.dev.BGP.Networks {
		r.BGP.Originate(p, bgp.PathAttrs{Origin: bgp.OriginIGP})
	}
	r.syncRedistribution()
}

// syncRedistribution re-derives redistributed local paths from the RIB.
func (r *Router) syncRedistribution() {
	if r.BGP == nil {
		return
	}
	want := map[netip.Prefix]bgp.PathAttrs{}
	for _, p := range r.dev.BGP.Networks {
		want[p.Masked()] = bgp.PathAttrs{Origin: bgp.OriginIGP}
	}
	for _, src := range r.dev.BGP.Redistribute {
		for _, rt := range r.rib.Routes() {
			match := false
			switch src {
			case "connected":
				match = rt.Protocol == routing.ProtoConnected
			case "static":
				match = rt.Protocol == routing.ProtoStatic
			case "isis":
				match = rt.Protocol == routing.ProtoISIS
			}
			if match {
				if _, have := want[rt.Prefix]; !have {
					want[rt.Prefix] = bgp.PathAttrs{Origin: bgp.OriginIncomplete, MED: rt.Metric, HasMED: true}
				}
			}
		}
	}
	// Install the desired set; withdraw locals that no longer qualify.
	current := map[netip.Prefix]bool{}
	for _, p := range r.BGP.BestRoutes() {
		if p.Local {
			current[p.Prefix] = true
		}
	}
	for prefix, attrs := range want {
		r.BGP.Originate(prefix, attrs)
		delete(current, prefix)
	}
	for prefix := range current {
		r.BGP.WithdrawLocal(prefix)
	}
}

// scheduleRIBSettled batches post-RIB-change work (BGP next-hop
// reevaluation, redistribution sync) one event-loop turn later, breaking
// re-entrancy between protocol engines.
func (r *Router) scheduleRIBSettled() {
	if r.ribDirty != nil {
		return
	}
	r.ribDirty = r.clock.After(10*time.Millisecond, func() {
		r.ribDirty = nil
		if r.BGP != nil {
			if r.nextHopStateChanged() {
				r.BGP.ReevaluateNextHops()
			}
			// Redistribution only needs a rescan when something is
			// actually redistributed; network statements are static.
			if len(r.dev.BGP.Redistribute) > 0 {
				r.syncRedistribution()
			}
		}
		if r.onStateChange != nil {
			r.onStateChange()
		}
	})
}

// nextHopStateChanged re-resolves every distinct BGP next hop against the
// RIB and reports whether any resolution changed since the last check.
func (r *Router) nextHopStateChanged() bool {
	changed := false
	current := map[netip.Addr]nhResolution{}
	for _, nh := range r.BGP.DistinctNextHops() {
		var res nhResolution
		if r.OwnsAddr(nh) {
			res = nhResolution{0, true}
		} else if rt, ok := r.rib.Lookup(nh); ok && !rt.Drop {
			res = nhResolution{rt.Metric, true}
		}
		current[nh] = res
		if prev, seen := r.nhState[nh]; !seen || prev != res {
			changed = true
		}
	}
	if len(current) != len(r.nhState) {
		changed = true
	}
	r.nhState = current
	return changed
}

// OnStateChange registers the orchestrator's convergence probe.
func (r *Router) OnStateChange(fn func()) { r.onStateChange = fn }

// ensureFIB lazily builds the FIB view.
func (r *Router) ensureFIB() *dataplane.FIB {
	if r.fib == nil {
		r.fib = dataplane.New(r.rib, r.LocalAddrs())
	}
	return r.fib
}

// FIBGeneration returns a monotonic counter covering every input of the
// exported AFT: the RIB's elected-route version, the MPLS cross-connect
// state version, and the shutdown flag. Equal generations imply an
// identical AFT, so callers can skip re-rendering (and re-verifying)
// routers whose generation has not moved. The counter is per-incarnation:
// a rebuilt router restarts from zero, which the orchestrator disambiguates
// with an epoch (see kne.GenStamp).
func (r *Router) FIBGeneration() uint64 {
	g := r.rib.Version()
	if r.MPLS != nil {
		g += r.MPLS.StateVersion()
	}
	if r.down {
		// Shutdown gates the whole forwarding plane off; the terms above
		// never decrease, so the +1 keeps the sum strictly increasing across
		// the transition even when no route was withdrawn.
		g++
	}
	return g
}

// ExportAFT renders the current forwarding state. A shutdown router exports
// an empty table: its forwarding plane is gone with the pod. The rendered
// AFT is cached per FIB generation: while no RIB, cross-connect, or
// shutdown change occurred, repeated exports return the same (immutable)
// table without re-resolving anything.
func (r *Router) ExportAFT() *aft.AFT {
	gen := r.FIBGeneration()
	if r.aftCache != nil && r.aftGen == gen {
		return r.aftCache
	}
	a := r.RenderAFT()
	r.aftCache, r.aftGen = a, gen
	return a
}

// AFTCacheValid reports whether ExportAFT would be served from the cache —
// i.e. the router's forwarding state is clean since the last export.
func (r *Router) AFTCacheValid() bool {
	return r.aftCache != nil && r.aftGen == r.FIBGeneration()
}

// RenderAFT renders the forwarding state from scratch, bypassing the
// generation cache. This is the reference (full re-export) path used by the
// incremental-vs-full benchmarks and the cache-invalidation tests.
func (r *Router) RenderAFT() *aft.AFT {
	if r.down {
		return dataplane.New(routing.NewRIB(), nil).ExportAFT(r.Name, nil)
	}
	var start time.Time
	if r.obs != nil {
		start = time.Now()
	}
	var xcs []mpls.CrossConnect
	if r.MPLS != nil {
		xcs = r.MPLS.CrossConnects()
	}
	a := r.ensureFIB().ExportAFT(r.Name, xcs)
	if r.obs != nil {
		r.hFIBNanos.Observe(time.Since(start).Nanoseconds())
	}
	return a
}

// --- Substrate hooks -------------------------------------------------------

// AttachLink wires an interface to a link; frames sent by IS-IS go through
// send, and inbound frames arrive via HandleLinkFrame.
func (r *Router) AttachLink(intfName string, send func([]byte)) {
	iface := r.ifaces[intfName]
	if iface == nil {
		// Interface wired in topology but absent from config: tolerate, the
		// port exists physically but carries no L3 config.
		iface = &Iface{Cfg: &ir.Interface{Name: intfName}, Up: true}
		r.ifaces[intfName] = iface
	}
	iface.send = send
	if r.ISIS != nil {
		r.ISIS.AttachTransport(intfName, send)
	}
}

// DetachLink signals link-down on an interface.
func (r *Router) DetachLink(intfName string) {
	iface := r.ifaces[intfName]
	if iface == nil {
		return
	}
	iface.send = nil
	if r.ISIS != nil {
		r.ISIS.DetachTransport(intfName)
	}
}

// HandleLinkFrame receives a frame from the wire on the named interface.
// IS-IS PDUs are the only link-local frames; routed payloads (BGP, RSVP)
// are delivered by the substrate via DeliverBGP/DeliverRSVP.
func (r *Router) HandleLinkFrame(intfName string, data []byte) {
	if r.Crashed() {
		return
	}
	defer r.guard("isis")
	if r.ISIS != nil {
		r.ISIS.HandlePDU(intfName, data)
	}
}

// DeliverBGP hands a BGP message addressed to this router's address from a
// configured peer. Messages are paced through the vendor's route-processing
// throughput model, so large tables take realistic (virtual) time to
// converge. The vendor profile's update validation runs before processing:
// an update the implementation cannot parse crashes the routing process
// (all sessions reset), reproducing the cross-vendor outage class.
func (r *Router) DeliverBGP(from netip.Addr, data []byte) {
	if r.Crashed() {
		return
	}
	// Keepalives bypass the processing queue: were they paced behind a
	// large table transfer, the hold timer would expire mid-transfer and
	// flap the session — real stacks service keepalives promptly.
	if typ, _, err := bgp.DecodeHeader(data); err == nil && typ == bgp.MsgKeepalive {
		r.processBGP(from, data)
		return
	}
	now := r.clock.Now()
	start := r.busyUntil
	if start < now {
		start = now
	}
	r.busyUntil = start + r.procCost(data)
	r.clock.After(start-now, func() { r.processBGP(from, data) })
}

// procCost models per-message control-plane work: a small fixed cost plus
// per-prefix time at the vendor's processing rate.
func (r *Router) procCost(data []byte) time.Duration {
	const base = 100 * time.Microsecond
	rate := r.Profile.RouteProcPerSec
	if rate <= 0 {
		return base
	}
	decoded, err := bgp.Decode(data)
	if err != nil {
		return base
	}
	u, ok := decoded.(bgp.Update)
	if !ok {
		return base
	}
	prefixes := len(u.NLRI) + len(u.Withdrawn)
	return base + time.Duration(prefixes)*time.Second/time.Duration(rate)
}

func (r *Router) processBGP(from netip.Addr, data []byte) {
	if r.Crashed() {
		return
	}
	defer r.guard("bgp")
	if r.Profile.MaxCommunities > 0 {
		if decoded, err := bgp.Decode(data); err == nil {
			if u, ok := decoded.(bgp.Update); ok && u.Attrs != nil &&
				len(u.Attrs.Communities) > r.Profile.MaxCommunities {
				r.crashRoutingProcess()
				return
			}
		}
	}
	if r.BGP != nil {
		r.BGP.HandleMessage(from, data)
	}
}

// crashRoutingProcess models the vendor bug: the process restarts, dropping
// every BGP session.
func (r *Router) crashRoutingProcess() {
	r.CrashCount++
	r.crashed = true
	r.cCrashes.Inc()
	if r.obs.Enabled() {
		r.obs.Emit(obs.Event{Type: obs.EvCrash, Device: r.Name, Value: int64(r.CrashCount)})
	}
	if r.BGP != nil {
		for _, p := range r.BGP.Peers() {
			p.TransportDown()
		}
	}
	// The process restarts after a simulated supervisor delay; sessions
	// must be re-established by the substrate's reachability prober.
	r.clock.After(30*time.Second, func() { r.crashed = false })
}

// Crashed reports whether the routing process is currently down — either
// the vendor-bug BGP process crash (auto-recovers) or a full Shutdown.
func (r *Router) Crashed() bool { return r.crashed || r.down }

// DeliverRSVP hands an RSVP message addressed to this router.
func (r *Router) DeliverRSVP(data []byte) {
	if r.Crashed() {
		return
	}
	defer r.guard("rsvp")
	if r.MPLS != nil {
		r.MPLS.HandleMessage(data)
	}
}

// ForwardingInterface resolves the egress interface and adjacent address a
// packet to dst would use; ok is false for drops/unroutable.
func (r *Router) ForwardingInterface(dst netip.Addr) (intf string, adjacent netip.Addr, ok bool) {
	if r.down {
		return "", netip.Addr{}, false
	}
	if r.OwnsAddr(dst) {
		return "", netip.Addr{}, false // local delivery, not forwarded
	}
	rt, found := r.rib.Lookup(dst)
	if !found || rt.Drop {
		return "", netip.Addr{}, false
	}
	hops, err := r.ensureFIB().Resolve(rt)
	if err != nil || len(hops) == 0 {
		return "", netip.Addr{}, false
	}
	h := hops[0]
	if h.Drop || h.Receive {
		return "", netip.Addr{}, false
	}
	adjacent = h.IP
	if !adjacent.IsValid() {
		adjacent = dst
	}
	return h.Interface, adjacent, true
}

// CanReach reports whether this router has a non-drop forwarding path (or
// local ownership) for dst — the substrate's TCP-connectivity check for BGP
// session establishment.
func (r *Router) CanReach(dst netip.Addr) bool {
	if r.down {
		return false
	}
	if r.OwnsAddr(dst) {
		return true
	}
	rt, ok := r.rib.Lookup(dst)
	return ok && !rt.Drop
}
