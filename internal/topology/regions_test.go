package topology

import (
	"reflect"
	"testing"
)

func TestRegionsSingleComponent(t *testing.T) {
	topo := Ring(5, VendorEOS)
	regions := topo.Regions()
	if len(regions) != 1 {
		t.Fatalf("ring has %d regions, want 1", len(regions))
	}
	if len(regions[0]) != 5 {
		t.Fatalf("region has %d nodes, want 5", len(regions[0]))
	}
}

func TestMultiRegionRecoversRegions(t *testing.T) {
	topo := MultiRegion(4, 3, VendorEOS)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Fatal("multi-region topology must not be connected")
	}
	regions := topo.Regions()
	if len(regions) != 4 {
		t.Fatalf("got %d regions, want 4", len(regions))
	}
	want := [][]string{
		{"g1n1", "g1n2", "g1n3"},
		{"g2n1", "g2n2", "g2n3"},
		{"g3n1", "g3n2", "g3n3"},
		{"g4n1", "g4n2", "g4n3"},
	}
	if !reflect.DeepEqual(regions, want) {
		t.Fatalf("regions = %v, want %v", regions, want)
	}
}

func TestRegionsIsolatedNode(t *testing.T) {
	topo := &Topology{
		Name: "iso",
		Nodes: []Node{
			{Name: "a", Vendor: VendorEOS},
			{Name: "b", Vendor: VendorEOS},
			{Name: "lone", Vendor: VendorEOS},
		},
		Links: []Link{{
			A: Endpoint{Node: "a", Interface: "Ethernet1"},
			Z: Endpoint{Node: "b", Interface: "Ethernet1"},
		}},
	}
	regions := topo.Regions()
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	if !reflect.DeepEqual(regions[1], []string{"lone"}) {
		t.Fatalf("isolated node not its own region: %v", regions)
	}
}

func TestSubtopology(t *testing.T) {
	topo := MultiRegion(3, 4, VendorEOS)
	regions := topo.Regions()
	sub := topo.Subtopology(regions[1])
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sub.Nodes) != 4 {
		t.Fatalf("subtopology has %d nodes, want 4", len(sub.Nodes))
	}
	if len(sub.Links) != 4 {
		t.Fatalf("subtopology has %d links, want 4 (ring of 4)", len(sub.Links))
	}
	for _, l := range sub.Links {
		if _, ok := sub.Node(l.A.Node); !ok {
			t.Fatalf("link %v references node outside subtopology", l)
		}
	}
	if !sub.Connected() {
		t.Fatal("region subtopology must be connected")
	}
}
