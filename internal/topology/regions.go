package topology

import (
	"fmt"
	"sort"
)

// Regions returns the connected components of the link graph as sorted
// node-name slices, ordered by each component's smallest member. A fully
// connected topology returns one region. Isolated nodes (no links) each form
// their own region. The region cut is what the sharded pipeline (core) and
// the region-aware batch solver (verify) partition work along: no link
// crosses a region, so no protocol adjacency or forwarding walk can either.
func (t *Topology) Regions() [][]string {
	adj := make(map[string][]string, len(t.Nodes))
	for _, l := range t.Links {
		adj[l.A.Node] = append(adj[l.A.Node], l.Z.Node)
		adj[l.Z.Node] = append(adj[l.Z.Node], l.A.Node)
	}
	seen := make(map[string]bool, len(t.Nodes))
	var regions [][]string
	for _, n := range t.Nodes {
		if seen[n.Name] {
			continue
		}
		var region []string
		stack := []string{n.Name}
		seen[n.Name] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			region = append(region, cur)
			for _, m := range adj[cur] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		sort.Strings(region)
		regions = append(regions, region)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i][0] < regions[j][0] })
	return regions
}

// Subtopology returns the topology induced by the named nodes: those nodes
// plus every link with both endpoints among them. Node and link declaration
// order is preserved, so per-region emulation sees the same orderings the
// whole-topology run would.
func (t *Topology) Subtopology(names []string) *Topology {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	sub := &Topology{Name: t.Name}
	for _, n := range t.Nodes {
		if want[n.Name] {
			sub.Nodes = append(sub.Nodes, n)
		}
	}
	for _, l := range t.Links {
		if want[l.A.Node] && want[l.Z.Node] {
			sub.Links = append(sub.Links, l)
		}
	}
	return sub
}

// MultiRegion returns r disconnected rings of per nodes each (per >= 3),
// named g<region>n<index> — the region-sharded scale shape. Each region is
// internally connected; no link crosses regions, so Regions() recovers
// exactly the r rings and the sharded pipeline can converge them
// independently.
func MultiRegion(r, per int, vendor Vendor) *Topology {
	t := &Topology{Name: fmt.Sprintf("regions-%dx%d", r, per)}
	nm := namer{}
	for g := 1; g <= r; g++ {
		name := func(i int) string { return fmt.Sprintf("g%dn%d", g, i) }
		for i := 1; i <= per; i++ {
			t.Nodes = append(t.Nodes, Node{Name: name(i), Vendor: vendor})
		}
		for i := 1; i <= per; i++ {
			z := i + 1
			if z > per {
				if per < 3 {
					break // a 2-node "ring" is just one link
				}
				z = 1
			}
			a, b := name(i), name(z)
			t.Links = append(t.Links, Link{
				A: Endpoint{Node: a, Interface: nm.next(a)},
				Z: Endpoint{Node: b, Interface: nm.next(b)},
			})
		}
	}
	return t
}
