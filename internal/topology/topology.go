// Package topology defines the network topology input format shared by the
// emulation and model-based pipelines: the set of devices, their vendor, and
// the point-to-point links between named interfaces.
//
// The on-disk format is JSON, mirroring the role KNE's topology textproto
// plays in the paper's prototype: it tells the orchestrator which router
// images to boot and which interface pairs to wire together.
package topology

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Vendor identifies which configuration dialect and behaviour profile a node
// runs.
type Vendor string

// Supported vendors. EOS is the Arista-like dialect the paper evaluates;
// JUNOSLIKE is the hierarchical dialect used for multi-vendor topologies.
const (
	VendorEOS       Vendor = "eos"
	VendorJunosLike Vendor = "junoslike"
)

// Valid reports whether v names a known vendor.
func (v Vendor) Valid() bool { return v == VendorEOS || v == VendorJunosLike }

// Node is one device in the topology.
type Node struct {
	// Name is the unique device name, e.g. "r1".
	Name string `json:"name"`
	// Vendor selects the config dialect and vendor behaviour profile.
	Vendor Vendor `json:"vendor"`
	// Config is the device configuration text in the vendor's dialect.
	Config string `json:"config,omitempty"`
}

// Endpoint names one side of a link as node:interface.
type Endpoint struct {
	Node      string `json:"node"`
	Interface string `json:"interface"`
}

// String renders the endpoint as "node:interface".
func (e Endpoint) String() string { return e.Node + ":" + e.Interface }

// ParseEndpoint parses "node:interface".
func ParseEndpoint(s string) (Endpoint, error) {
	node, intf, ok := strings.Cut(s, ":")
	if !ok || node == "" || intf == "" {
		return Endpoint{}, fmt.Errorf("topology: malformed endpoint %q (want node:interface)", s)
	}
	return Endpoint{Node: node, Interface: intf}, nil
}

// Link is a point-to-point wire between two endpoints.
type Link struct {
	A Endpoint `json:"a"`
	Z Endpoint `json:"z"`
}

// String renders the link as "a <-> z".
func (l Link) String() string { return l.A.String() + " <-> " + l.Z.String() }

// Topology is the full input network description.
type Topology struct {
	// Name labels the topology in reports.
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Links []Link `json:"links"`
}

// Parse decodes and validates a JSON topology.
func Parse(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Marshal encodes the topology as indented JSON.
func (t *Topology) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Validate checks structural invariants: unique node names, known vendors,
// link endpoints referencing declared nodes, and no interface wired twice.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("topology %q: no nodes", t.Name)
	}
	nodes := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topology %q: node with empty name", t.Name)
		}
		if nodes[n.Name] {
			return fmt.Errorf("topology %q: duplicate node %q", t.Name, n.Name)
		}
		if !n.Vendor.Valid() {
			return fmt.Errorf("topology %q: node %q has unknown vendor %q", t.Name, n.Name, n.Vendor)
		}
		nodes[n.Name] = true
	}
	used := make(map[string]bool) // endpoint string -> wired
	for i, l := range t.Links {
		if l.A.Node == l.Z.Node && l.A.Interface == l.Z.Interface {
			return fmt.Errorf("topology %q: link %d connects an interface to itself", t.Name, i)
		}
		for _, ep := range []Endpoint{l.A, l.Z} {
			if !nodes[ep.Node] {
				return fmt.Errorf("topology %q: link %d references unknown node %q", t.Name, i, ep.Node)
			}
			if ep.Interface == "" {
				return fmt.Errorf("topology %q: link %d has empty interface on %q", t.Name, i, ep.Node)
			}
			key := ep.String()
			if used[key] {
				return fmt.Errorf("topology %q: interface %s wired into multiple links", t.Name, key)
			}
			used[key] = true
		}
	}
	return nil
}

// Node returns the named node.
func (t *Topology) Node(name string) (*Node, bool) {
	for i := range t.Nodes {
		if t.Nodes[i].Name == name {
			return &t.Nodes[i], true
		}
	}
	return nil, false
}

// Peer returns the endpoint wired to the given endpoint, if any.
func (t *Topology) Peer(ep Endpoint) (Endpoint, bool) {
	for _, l := range t.Links {
		if l.A == ep {
			return l.Z, true
		}
		if l.Z == ep {
			return l.A, true
		}
	}
	return Endpoint{}, false
}

// NodeLinks returns the links attached to node, in declaration order.
func (t *Topology) NodeLinks(node string) []Link {
	var out []Link
	for _, l := range t.Links {
		if l.A.Node == node || l.Z.Node == node {
			out = append(out, l)
		}
	}
	return out
}

// NodeNames returns the sorted node names.
func (t *Topology) NodeNames() []string {
	out := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

// Degree returns the number of links attached to node.
func (t *Topology) Degree(node string) int { return len(t.NodeLinks(node)) }

// Connected reports whether the topology's link graph is a single connected
// component (ignoring nodes with no links only if the topology has one node).
func (t *Topology) Connected() bool {
	if len(t.Nodes) <= 1 {
		return true
	}
	adj := make(map[string][]string)
	for _, l := range t.Links {
		adj[l.A.Node] = append(adj[l.A.Node], l.Z.Node)
		adj[l.Z.Node] = append(adj[l.Z.Node], l.A.Node)
	}
	seen := map[string]bool{t.Nodes[0].Name: true}
	stack := []string{t.Nodes[0].Name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(t.Nodes)
}
