package topology

import (
	"strings"
	"testing"
)

func validTopo() *Topology {
	return &Topology{
		Name: "t",
		Nodes: []Node{
			{Name: "r1", Vendor: VendorEOS},
			{Name: "r2", Vendor: VendorJunosLike},
		},
		Links: []Link{{
			A: Endpoint{Node: "r1", Interface: "Ethernet1"},
			Z: Endpoint{Node: "r2", Interface: "Ethernet1"},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTopo().Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Topology)
		want   string
	}{
		{"no nodes", func(tp *Topology) { tp.Nodes = nil }, "no nodes"},
		{"empty name", func(tp *Topology) { tp.Nodes[0].Name = "" }, "empty name"},
		{"dup node", func(tp *Topology) { tp.Nodes[1].Name = "r1" }, "duplicate node"},
		{"bad vendor", func(tp *Topology) { tp.Nodes[0].Vendor = "ios" }, "unknown vendor"},
		{"unknown node in link", func(tp *Topology) { tp.Links[0].A.Node = "r9" }, "unknown node"},
		{"empty interface", func(tp *Topology) { tp.Links[0].Z.Interface = "" }, "empty interface"},
		{"double wire", func(tp *Topology) {
			tp.Links = append(tp.Links, Link{
				A: Endpoint{Node: "r1", Interface: "Ethernet1"},
				Z: Endpoint{Node: "r2", Interface: "Ethernet2"},
			})
		}, "multiple links"},
		{"self loop", func(tp *Topology) {
			tp.Links[0] = Link{
				A: Endpoint{Node: "r1", Interface: "Ethernet1"},
				Z: Endpoint{Node: "r1", Interface: "Ethernet1"},
			}
		}, "itself"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tp := validTopo()
			tc.mutate(tp)
			err := tp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	tp := validTopo()
	data, err := tp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tp.Name || len(got.Nodes) != 2 || len(got.Links) != 1 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","nodes":[]}`)); err == nil {
		t.Error("Parse accepted empty topology")
	}
	if _, err := Parse([]byte(`{garbage`)); err == nil {
		t.Error("Parse accepted malformed JSON")
	}
}

func TestParseEndpoint(t *testing.T) {
	ep, err := ParseEndpoint("r1:Ethernet2")
	if err != nil || ep.Node != "r1" || ep.Interface != "Ethernet2" {
		t.Errorf("ParseEndpoint = %v,%v", ep, err)
	}
	for _, bad := range []string{"r1", "r1:", ":Ethernet1", ""} {
		if _, err := ParseEndpoint(bad); err == nil {
			t.Errorf("ParseEndpoint(%q) succeeded", bad)
		}
	}
}

func TestPeerAndNodeLinks(t *testing.T) {
	tp := Line(3, VendorEOS)
	peer, ok := tp.Peer(Endpoint{Node: "r1", Interface: "Ethernet1"})
	if !ok || peer.Node != "r2" {
		t.Errorf("Peer = %v,%v; want r2", peer, ok)
	}
	if _, ok := tp.Peer(Endpoint{Node: "r1", Interface: "Ethernet9"}); ok {
		t.Error("Peer found for unwired interface")
	}
	if got := len(tp.NodeLinks("r2")); got != 2 {
		t.Errorf("NodeLinks(r2) = %d, want 2", got)
	}
	if tp.Degree("r1") != 1 || tp.Degree("r2") != 2 {
		t.Errorf("Degree wrong: r1=%d r2=%d", tp.Degree("r1"), tp.Degree("r2"))
	}
}

func TestNodeLookup(t *testing.T) {
	tp := Line(2, VendorEOS)
	n, ok := tp.Node("r2")
	if !ok || n.Name != "r2" {
		t.Errorf("Node(r2) = %v,%v", n, ok)
	}
	if _, ok := tp.Node("r9"); ok {
		t.Error("Node(r9) found")
	}
	names := tp.NodeNames()
	if len(names) != 2 || names[0] != "r1" {
		t.Errorf("NodeNames = %v", names)
	}
}

func TestBuilders(t *testing.T) {
	tests := []struct {
		name        string
		topo        *Topology
		nodes, link int
	}{
		{"line", Line(5, VendorEOS), 5, 4},
		{"ring", Ring(4, VendorEOS), 4, 4},
		{"clos", Clos(2, 4, VendorEOS), 6, 8},
		{"star", Star(6, VendorEOS), 7, 6},
		{"grid", Grid(3, 4, VendorEOS), 12, 17},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.topo.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if len(tc.topo.Nodes) != tc.nodes {
				t.Errorf("nodes = %d, want %d", len(tc.topo.Nodes), tc.nodes)
			}
			if len(tc.topo.Links) != tc.link {
				t.Errorf("links = %d, want %d", len(tc.topo.Links), tc.link)
			}
			if !tc.topo.Connected() {
				t.Error("builder topology not connected")
			}
		})
	}
}

func TestConnected(t *testing.T) {
	tp := &Topology{
		Name:  "split",
		Nodes: []Node{{Name: "a", Vendor: VendorEOS}, {Name: "b", Vendor: VendorEOS}},
	}
	if tp.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	single := &Topology{Name: "one", Nodes: []Node{{Name: "a", Vendor: VendorEOS}}}
	if !single.Connected() {
		t.Error("single node reported disconnected")
	}
}
