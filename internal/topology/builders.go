package topology

import "fmt"

// The builders below generate common topology shapes used by tests, examples,
// and the scale benchmarks. Interface naming follows the EOS convention
// (Ethernet1, Ethernet2, …) with per-node counters, matching what the config
// generator emits.

// namer hands out sequential EthernetN names per node.
type namer map[string]int

func (n namer) next(node string) string {
	n[node]++
	return fmt.Sprintf("Ethernet%d", n[node])
}

// Line returns a chain r1 — r2 — … — rN.
func Line(n int, vendor Vendor) *Topology {
	t := &Topology{Name: fmt.Sprintf("line-%d", n)}
	nm := namer{}
	for i := 1; i <= n; i++ {
		t.Nodes = append(t.Nodes, Node{Name: fmt.Sprintf("r%d", i), Vendor: vendor})
	}
	for i := 1; i < n; i++ {
		a, z := fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", i+1)
		t.Links = append(t.Links, Link{
			A: Endpoint{Node: a, Interface: nm.next(a)},
			Z: Endpoint{Node: z, Interface: nm.next(z)},
		})
	}
	return t
}

// Ring returns a cycle of n nodes (n ≥ 3).
func Ring(n int, vendor Vendor) *Topology {
	t := Line(n, vendor)
	t.Name = fmt.Sprintf("ring-%d", n)
	if n >= 3 {
		// Close the loop; the line builder used one interface on r1 and rN.
		t.Links = append(t.Links, Link{
			A: Endpoint{Node: "r1", Interface: fmt.Sprintf("Ethernet%d", 2)},
			Z: Endpoint{Node: fmt.Sprintf("r%d", n), Interface: fmt.Sprintf("Ethernet%d", 2)},
		})
	}
	return t
}

// Clos returns a two-tier leaf/spine fabric with the given counts; every leaf
// connects to every spine. Node names are spineI / leafJ.
func Clos(spines, leaves int, vendor Vendor) *Topology {
	t := &Topology{Name: fmt.Sprintf("clos-%ds%dl", spines, leaves)}
	nm := namer{}
	for i := 1; i <= spines; i++ {
		t.Nodes = append(t.Nodes, Node{Name: fmt.Sprintf("spine%d", i), Vendor: vendor})
	}
	for j := 1; j <= leaves; j++ {
		t.Nodes = append(t.Nodes, Node{Name: fmt.Sprintf("leaf%d", j), Vendor: vendor})
	}
	for i := 1; i <= spines; i++ {
		for j := 1; j <= leaves; j++ {
			s, l := fmt.Sprintf("spine%d", i), fmt.Sprintf("leaf%d", j)
			t.Links = append(t.Links, Link{
				A: Endpoint{Node: s, Interface: nm.next(s)},
				Z: Endpoint{Node: l, Interface: nm.next(l)},
			})
		}
	}
	return t
}

// Star returns a hub-and-spoke topology with one hub and n spokes.
func Star(n int, vendor Vendor) *Topology {
	t := &Topology{Name: fmt.Sprintf("star-%d", n)}
	nm := namer{}
	t.Nodes = append(t.Nodes, Node{Name: "hub", Vendor: vendor})
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("spoke%d", i)
		t.Nodes = append(t.Nodes, Node{Name: name, Vendor: vendor})
		t.Links = append(t.Links, Link{
			A: Endpoint{Node: "hub", Interface: nm.next("hub")},
			Z: Endpoint{Node: name, Interface: nm.next(name)},
		})
	}
	return t
}

// Grid returns a rows×cols mesh where each node links to its right and down
// neighbours — a rough stand-in for a WAN backbone.
func Grid(rows, cols int, vendor Vendor) *Topology {
	t := &Topology{Name: fmt.Sprintf("grid-%dx%d", rows, cols)}
	nm := namer{}
	name := func(r, c int) string { return fmt.Sprintf("r%d-%d", r, c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.Nodes = append(t.Nodes, Node{Name: name(r, c), Vendor: vendor})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				a, z := name(r, c), name(r, c+1)
				t.Links = append(t.Links, Link{
					A: Endpoint{Node: a, Interface: nm.next(a)},
					Z: Endpoint{Node: z, Interface: nm.next(z)},
				})
			}
			if r+1 < rows {
				a, z := name(r, c), name(r+1, c)
				t.Links = append(t.Links, Link{
					A: Endpoint{Node: a, Interface: nm.next(a)},
					Z: Endpoint{Node: z, Interface: nm.next(z)},
				})
			}
		}
	}
	return t
}
