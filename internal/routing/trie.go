// Package routing provides the route data structures shared by every control
// plane in the repository: a binary prefix trie for longest-prefix match, a
// RIB with administrative-distance arbitration, and the route types that
// protocols install.
package routing

import (
	"net/netip"
)

// Trie is a binary (one bit per level) prefix trie over IPv4 prefixes mapping
// each prefix to an arbitrary value. The zero value is not usable; call
// NewTrie.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func bitAt(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-i%8)) & 1
}

// checkPrefix canonicalizes p and reports whether it is a usable IPv4
// prefix. The trie stores only IPv4; invalid or non-IPv4 prefixes are
// rejected (ok=false) rather than panicking — snapshot ingestion
// (aft.Validate, the config parsers) screens them out with a structured
// error long before they reach a forwarding structure, so a rejection here
// is pure defense in depth against hostile input that slipped through.
func checkPrefix(p netip.Prefix) (netip.Prefix, bool) {
	if !p.IsValid() || !p.Addr().Is4() {
		return netip.Prefix{}, false
	}
	return p.Masked(), true
}

// Insert stores val under p, replacing any existing value. It reports whether
// the prefix was newly added; invalid or non-IPv4 prefixes are rejected as a
// no-op (false).
func (t *Trie[V]) Insert(p netip.Prefix, val V) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored at exactly p. Invalid or non-IPv4 prefixes
// match nothing.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	p, ok := checkPrefix(p)
	if !ok {
		var zero V
		return zero, false
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

// Delete removes the value stored at exactly p and reports whether a value
// was present. Interior nodes are pruned lazily: unreferenced branches are
// trimmed on the way back up. Invalid or non-IPv4 prefixes match nothing.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	path := make([]*trieNode[V], 0, p.Bits()+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	// Prune empty leaves.
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if node.set || node.child[0] != nil || node.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := bitAt(p.Addr(), i-1)
		if parent.child[b] == node {
			parent.child[b] = nil
		}
	}
	return true
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	if !addr.Is4() {
		var zero V
		return netip.Prefix{}, zero, false
	}
	n := t.root
	var (
		best     V
		bestLen  = -1
		hasMatch bool
	)
	for i := 0; ; i++ {
		if n.set {
			best, bestLen, hasMatch = n.val, i, true
		}
		if i == 32 {
			break
		}
		n = n.child[bitAt(addr, i)]
		if n == nil {
			break
		}
	}
	if !hasMatch {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return netip.PrefixFrom(addr, bestLen).Masked(), best, true
}

// Walk visits every stored prefix in trie (lexicographic bit) order. If fn
// returns false the walk stops early.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	var rec func(n *trieNode[V], addr [4]byte, depth int) bool
	rec = func(n *trieNode[V], addr [4]byte, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			p := netip.PrefixFrom(netip.AddrFrom4(addr), depth)
			if !fn(p, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], addr, depth+1) {
			return false
		}
		addr[depth/8] |= 1 << (7 - depth%8)
		return rec(n.child[1], addr, depth+1)
	}
	rec(t.root, [4]byte{}, 0)
}

// Prefixes returns every stored prefix in bit order.
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
