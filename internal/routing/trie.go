// Package routing provides the route data structures shared by every control
// plane in the repository: a path-compressed prefix trie for longest-prefix
// match, a RIB with administrative-distance arbitration, and the route types
// that protocols install.
package routing

import (
	"encoding/binary"
	"math/bits"
	"net/netip"
)

// Trie is a path-compressed (Patricia) prefix trie over IPv4 prefixes mapping
// each prefix to an arbitrary value. Interior nodes exist only at branch
// points and at stored prefixes, so a table of n prefixes costs at most 2n-1
// nodes — against one node per bit (up to 32 per prefix) for the naive binary
// trie, the compaction that makes 10k-router emulation fit in memory. The
// zero value is not usable; call NewTrie.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

// trieNode holds the full prefix it represents: key is the prefix's address
// bits left-aligned in a uint32, bits its length. Children extend the parent's
// prefix; child[b] roots the subtree whose bit at position n.bits is b.
type trieNode[V any] struct {
	child [2]*trieNode[V]
	key   uint32
	bits  uint8
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func addrKey(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// keyBit returns bit i (0 = most significant) of key.
func keyBit(key uint32, i uint8) int {
	return int(key>>(31-i)) & 1
}

// maskKey keeps the first n bits of key. Go defines shifts >= 32 to yield 0,
// so n==0 masks to 0 and n==32 is the identity.
func maskKey(key uint32, n uint8) uint32 {
	return key & (^uint32(0) << (32 - uint32(n)))
}

// checkPrefix canonicalizes p and reports whether it is a usable IPv4
// prefix. The trie stores only IPv4; invalid or non-IPv4 prefixes are
// rejected (ok=false) rather than panicking — snapshot ingestion
// (aft.Validate, the config parsers) screens them out with a structured
// error long before they reach a forwarding structure, so a rejection here
// is pure defense in depth against hostile input that slipped through.
func checkPrefix(p netip.Prefix) (netip.Prefix, bool) {
	if !p.IsValid() || !p.Addr().Is4() {
		return netip.Prefix{}, false
	}
	return p.Masked(), true
}

// Insert stores val under p, replacing any existing value. It reports whether
// the prefix was newly added; invalid or non-IPv4 prefixes are rejected as a
// no-op (false).
func (t *Trie[V]) Insert(p netip.Prefix, val V) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	key, plen := addrKey(p.Addr()), uint8(p.Bits())
	n := t.root
	for {
		// Invariant: n's prefix is a (possibly equal) prefix of (key, plen).
		if n.bits == plen {
			added := !n.set
			n.val, n.set = val, true
			if added {
				t.size++
			}
			return added
		}
		b := keyBit(key, n.bits)
		c := n.child[b]
		if c == nil {
			n.child[b] = &trieNode[V]{key: key, bits: plen, val: val, set: true}
			t.size++
			return true
		}
		// Length of the prefix shared by the target and c, never shorter
		// than n.bits+1 (they agree through n's prefix and on bit n.bits).
		cl := uint8(bits.LeadingZeros32(key ^ c.key))
		if cl > plen {
			cl = plen
		}
		if cl > c.bits {
			cl = c.bits
		}
		if cl == c.bits {
			n = c // c's prefix covers the target; keep descending
			continue
		}
		if cl == plen {
			// The target is a proper prefix of c: insert above it.
			nn := &trieNode[V]{key: key, bits: plen, val: val, set: true}
			nn.child[keyBit(c.key, plen)] = c
			n.child[b] = nn
			t.size++
			return true
		}
		// The target and c diverge inside c's compressed edge: fork at the
		// divergence point.
		fork := &trieNode[V]{key: maskKey(key, cl), bits: cl}
		fork.child[keyBit(c.key, cl)] = c
		fork.child[keyBit(key, cl)] = &trieNode[V]{key: key, bits: plen, val: val, set: true}
		n.child[b] = fork
		t.size++
		return true
	}
}

// find descends to the node storing exactly (key, plen), or nil.
func (t *Trie[V]) find(key uint32, plen uint8) *trieNode[V] {
	n := t.root
	for {
		if n.bits == plen {
			if n.key != key {
				return nil
			}
			return n
		}
		c := n.child[keyBit(key, n.bits)]
		if c == nil || c.bits > plen || c.key != maskKey(key, c.bits) {
			return nil
		}
		n = c
	}
}

// Get returns the value stored at exactly p. Invalid or non-IPv4 prefixes
// match nothing.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	p, ok := checkPrefix(p)
	if !ok {
		var zero V
		return zero, false
	}
	n := t.find(addrKey(p.Addr()), uint8(p.Bits()))
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored at exactly p and reports whether a value
// was present. Unreferenced branches are trimmed and single-child pass-through
// nodes re-spliced on the way back up, restoring the path-compression
// invariant. Invalid or non-IPv4 prefixes match nothing.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	key, plen := addrKey(p.Addr()), uint8(p.Bits())
	path := make([]*trieNode[V], 0, 8)
	n := t.root
	for {
		path = append(path, n)
		if n.bits == plen {
			if n.key != key || !n.set {
				return false
			}
			break
		}
		c := n.child[keyBit(key, n.bits)]
		if c == nil || c.bits > plen || c.key != maskKey(key, c.bits) {
			return false
		}
		n = c
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	// Restore compression bottom-up: drop empty leaves, splice out unset
	// single-child interior nodes. The root is never removed.
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if node.set {
			break
		}
		parent := path[i-1]
		b := keyBit(node.key, parent.bits)
		switch {
		case node.child[0] == nil && node.child[1] == nil:
			parent.child[b] = nil
			// The parent may now be splice-able; keep walking up.
		case node.child[0] != nil && node.child[1] != nil:
			return true // still a branch point
		default:
			c := node.child[0]
			if c == nil {
				c = node.child[1]
			}
			parent.child[b] = c
			return true
		}
	}
	return true
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	if !addr.Is4() {
		var zero V
		return netip.Prefix{}, zero, false
	}
	key := addrKey(addr)
	var best *trieNode[V]
	for n := t.root; n != nil; {
		if n.key != maskKey(key, n.bits) {
			break
		}
		if n.set {
			best = n
		}
		if n.bits == 32 {
			break
		}
		n = n.child[keyBit(key, n.bits)]
	}
	if best == nil {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return netip.PrefixFrom(addr, int(best.bits)).Masked(), best.val, true
}

// Walk visits every stored prefix in trie (lexicographic bit) order: a prefix
// before its extensions, 0-branches before 1-branches — the same order the
// uncompressed binary trie produced. If fn returns false the walk stops early.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	var rec func(n *trieNode[V]) bool
	rec = func(n *trieNode[V]) bool {
		if n == nil {
			return true
		}
		if n.set {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], n.key)
			if !fn(netip.PrefixFrom(netip.AddrFrom4(b), int(n.bits)), n.val) {
				return false
			}
		}
		return rec(n.child[0]) && rec(n.child[1])
	}
	rec(t.root)
}

// Prefixes returns every stored prefix in bit order.
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
