package routing

import (
	"net/netip"
	"testing"
)

func nh(ip string) NextHop { return NextHop{IP: mustAddr(ip)} }

func route(p string, proto Protocol, metric uint32, hops ...NextHop) Route {
	return Route{
		Prefix:   mustPrefix(p),
		Protocol: proto,
		Distance: proto.DefaultDistance(),
		Metric:   metric,
		NextHops: hops,
	}
}

func TestRIBElection(t *testing.T) {
	r := NewRIB()
	if !r.Install(route("10.0.0.0/8", ProtoISIS, 20, nh("192.0.2.1"))) {
		t.Error("first install did not change election")
	}
	// eBGP (distance 20) beats IS-IS (115).
	if !r.Install(route("10.0.0.0/8", ProtoEBGP, 0, nh("192.0.2.9"))) {
		t.Error("better-distance install did not change election")
	}
	best, ok := r.Get(mustPrefix("10.0.0.0/8"))
	if !ok || best.Protocol != ProtoEBGP {
		t.Fatalf("best = %v,%v; want ebgp route", best, ok)
	}
	// iBGP (200) does not displace eBGP.
	if r.Install(route("10.0.0.0/8", ProtoIBGP, 0, nh("192.0.2.5"))) {
		t.Error("worse-distance install changed election")
	}
	if got := len(r.Candidates(mustPrefix("10.0.0.0/8"))); got != 3 {
		t.Errorf("candidates = %d, want 3", got)
	}
	// Withdrawing the winner falls back to IS-IS.
	if !r.Withdraw(mustPrefix("10.0.0.0/8"), ProtoEBGP) {
		t.Error("withdrawing winner did not change election")
	}
	best, _ = r.Get(mustPrefix("10.0.0.0/8"))
	if best.Protocol != ProtoISIS {
		t.Errorf("after withdraw best = %v, want isis", best)
	}
}

func TestRIBConnectedAlwaysWins(t *testing.T) {
	r := NewRIB()
	r.Install(route("192.0.2.0/31", ProtoEBGP, 0, nh("10.0.0.1")))
	r.Install(route("192.0.2.0/31", ProtoConnected, 0, NextHop{Interface: "Ethernet1"}))
	best, _ := r.Get(mustPrefix("192.0.2.0/31"))
	if best.Protocol != ProtoConnected {
		t.Errorf("best = %v, want connected", best)
	}
}

func TestRIBMetricTieBreak(t *testing.T) {
	r := NewRIB()
	r.Install(route("10.0.0.0/8", ProtoISIS, 30, nh("192.0.2.1")))
	// Same protocol reinstall with better metric replaces the candidate.
	r.Install(route("10.0.0.0/8", ProtoISIS, 10, nh("192.0.2.2")))
	best, _ := r.Get(mustPrefix("10.0.0.0/8"))
	if best.Metric != 10 || best.NextHops[0].IP != mustAddr("192.0.2.2") {
		t.Errorf("best = %v, want metric-10 via 192.0.2.2", best)
	}
	if got := len(r.Candidates(mustPrefix("10.0.0.0/8"))); got != 1 {
		t.Errorf("candidates = %d, want 1 (same-protocol replace)", got)
	}
}

func TestRIBNoopReinstall(t *testing.T) {
	r := NewRIB()
	rt := route("10.0.0.0/8", ProtoISIS, 20, nh("192.0.2.1"))
	r.Install(rt)
	v := r.Version()
	if r.Install(rt) {
		t.Error("identical reinstall reported change")
	}
	if r.Version() != v {
		t.Error("identical reinstall bumped version")
	}
}

func TestRIBLookupLPMSkipsEmptyElection(t *testing.T) {
	r := NewRIB()
	r.Install(route("10.0.0.0/8", ProtoISIS, 5, nh("192.0.2.1")))
	r.Install(route("10.1.0.0/16", ProtoEBGP, 0, nh("192.0.2.9")))
	rt, ok := r.Lookup(mustAddr("10.1.2.3"))
	if !ok || rt.Prefix != mustPrefix("10.1.0.0/16") {
		t.Fatalf("Lookup = %v,%v; want /16", rt, ok)
	}
	r.Withdraw(mustPrefix("10.1.0.0/16"), ProtoEBGP)
	rt, ok = r.Lookup(mustAddr("10.1.2.3"))
	if !ok || rt.Prefix != mustPrefix("10.0.0.0/8") {
		t.Errorf("after withdraw Lookup = %v,%v; want /8", rt, ok)
	}
}

func TestRIBOnChangeAndVersion(t *testing.T) {
	r := NewRIB()
	var events []string
	r.OnChange(func(p netip.Prefix, best *Route) {
		if best == nil {
			events = append(events, "del "+p.String())
		} else {
			events = append(events, "set "+p.String())
		}
	})
	r.Install(route("10.0.0.0/8", ProtoISIS, 5, nh("192.0.2.1")))
	r.Install(route("10.0.0.0/8", ProtoEBGP, 0, nh("192.0.2.2")))
	r.Withdraw(mustPrefix("10.0.0.0/8"), ProtoEBGP)
	r.Withdraw(mustPrefix("10.0.0.0/8"), ProtoISIS)
	want := []string{"set 10.0.0.0/8", "set 10.0.0.0/8", "set 10.0.0.0/8", "del 10.0.0.0/8"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("events[%d] = %q, want %q", i, events[i], want[i])
		}
	}
	if r.Version() != 4 {
		t.Errorf("Version = %d, want 4", r.Version())
	}
}

func TestRIBWithdrawAll(t *testing.T) {
	r := NewRIB()
	r.Install(route("10.0.0.0/8", ProtoISIS, 5, nh("192.0.2.1")))
	r.Install(route("10.1.0.0/16", ProtoISIS, 5, nh("192.0.2.1")))
	r.Install(route("10.1.0.0/16", ProtoEBGP, 0, nh("192.0.2.2")))
	if n := r.WithdrawAll(ProtoISIS); n != 1 {
		// 10.0.0.0/8 election changes (to none); 10.1.0.0/16 stays eBGP.
		t.Errorf("WithdrawAll changed %d elections, want 1", n)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if _, ok := r.Get(mustPrefix("10.0.0.0/8")); ok {
		t.Error("withdrawn prefix still elected")
	}
}

func TestRIBDropRoute(t *testing.T) {
	r := NewRIB()
	drop := Route{Prefix: mustPrefix("10.0.0.0/8"), Protocol: ProtoStatic, Distance: 1, Drop: true}
	r.Install(drop)
	rt, ok := r.Lookup(mustAddr("10.5.5.5"))
	if !ok || !rt.Drop {
		t.Errorf("Lookup = %v,%v; want drop route", rt, ok)
	}
}

func TestRIBRoutesSorted(t *testing.T) {
	r := NewRIB()
	r.Install(route("192.168.0.0/16", ProtoISIS, 1, nh("192.0.2.1")))
	r.Install(route("10.0.0.0/8", ProtoISIS, 1, nh("192.0.2.1")))
	r.Install(route("10.0.1.0/24", ProtoISIS, 1, nh("192.0.2.1")))
	routes := r.Routes()
	if len(routes) != 3 {
		t.Fatalf("Routes len = %d", len(routes))
	}
	if routes[0].Prefix != mustPrefix("10.0.0.0/8") || routes[2].Prefix != mustPrefix("192.168.0.0/16") {
		t.Errorf("Routes not in bit order: %v", routes)
	}
}

func TestNextHopStringAndEqual(t *testing.T) {
	a := NextHop{IP: mustAddr("10.0.0.1"), Interface: "Ethernet1", LabelStack: []uint32{100, 200}}
	b := a
	if !a.Equal(b) {
		t.Error("identical next hops not Equal")
	}
	b.LabelStack = []uint32{100, 201}
	if a.Equal(b) {
		t.Error("different label stacks Equal")
	}
	if got := a.String(); got != "10.0.0.1 via Ethernet1 labels [100 200]" {
		t.Errorf("String = %q", got)
	}
	direct := NextHop{Interface: "Loopback0"}
	if got := direct.String(); got != "direct via Loopback0" {
		t.Errorf("String = %q", got)
	}
}

func TestProtocolStringsAndDistances(t *testing.T) {
	tests := []struct {
		p    Protocol
		s    string
		dist uint8
	}{
		{ProtoConnected, "connected", 0},
		{ProtoStatic, "static", 1},
		{ProtoEBGP, "ebgp", 20},
		{ProtoISIS, "isis", 115},
		{ProtoIBGP, "ibgp", 200},
		{ProtoAggregate, "aggregate", 210},
		{ProtoLocal, "local", 0},
	}
	for _, tc := range tests {
		if tc.p.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", tc.p, tc.p.String(), tc.s)
		}
		if tc.p.DefaultDistance() != tc.dist {
			t.Errorf("%s.DefaultDistance() = %d, want %d", tc.s, tc.p.DefaultDistance(), tc.dist)
		}
	}
	if Protocol(99).String() != "proto(99)" || Protocol(99).DefaultDistance() != 255 {
		t.Error("unknown protocol formatting wrong")
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := NewTrie[int]()
	r := newBenchPrefixes(10000)
	for i, p := range r {
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(i), byte(i * 7), byte(i * 13), byte(i * 29)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func newBenchPrefixes(n int) []netip.Prefix {
	out := make([]netip.Prefix, 0, n)
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{byte(10 + i%200), byte(i / 251), byte(i % 251), 0})
		out = append(out, netip.PrefixFrom(a, 24).Masked())
	}
	return out
}
