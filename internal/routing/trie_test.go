package routing

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func TestTrieInsertGet(t *testing.T) {
	tr := NewTrie[string]()
	if !tr.Insert(mustPrefix("10.0.0.0/8"), "a") {
		t.Error("first insert reported not-added")
	}
	if tr.Insert(mustPrefix("10.0.0.0/8"), "b") {
		t.Error("replacing insert reported added")
	}
	if v, ok := tr.Get(mustPrefix("10.0.0.0/8")); !ok || v != "b" {
		t.Errorf("Get = %q,%v; want b,true", v, ok)
	}
	if _, ok := tr.Get(mustPrefix("10.0.0.0/9")); ok {
		t.Error("Get on absent longer prefix succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieZeroLengthPrefix(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("0.0.0.0/0"), 1)
	p, v, ok := tr.Lookup(mustAddr("203.0.113.9"))
	if !ok || v != 1 || p != mustPrefix("0.0.0.0/0") {
		t.Errorf("default route lookup = %v,%v,%v", p, v, ok)
	}
}

func TestTrieHostRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("192.0.2.1/32"), 7)
	if _, _, ok := tr.Lookup(mustAddr("192.0.2.2")); ok {
		t.Error("host route matched a different address")
	}
	if p, v, ok := tr.Lookup(mustAddr("192.0.2.1")); !ok || v != 7 || p.Bits() != 32 {
		t.Errorf("host lookup = %v,%v,%v", p, v, ok)
	}
}

func TestTrieLongestMatchWins(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(mustPrefix("10.0.0.0/8"), "eight")
	tr.Insert(mustPrefix("10.1.0.0/16"), "sixteen")
	tr.Insert(mustPrefix("10.1.2.0/24"), "twentyfour")
	tests := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.4", "sixteen"},
		{"10.2.0.1", "eight"},
	}
	for _, tc := range tests {
		if _, v, ok := tr.Lookup(mustAddr(tc.addr)); !ok || v != tc.want {
			t.Errorf("Lookup(%s) = %q,%v; want %q", tc.addr, v, ok, tc.want)
		}
	}
	if _, _, ok := tr.Lookup(mustAddr("11.0.0.1")); ok {
		t.Error("lookup outside all prefixes matched")
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("10.0.0.0/8"), 1)
	tr.Insert(mustPrefix("10.1.0.0/16"), 2)
	if !tr.Delete(mustPrefix("10.1.0.0/16")) {
		t.Error("Delete existing returned false")
	}
	if tr.Delete(mustPrefix("10.1.0.0/16")) {
		t.Error("second Delete returned true")
	}
	if tr.Delete(mustPrefix("172.16.0.0/12")) {
		t.Error("Delete absent returned true")
	}
	if _, v, ok := tr.Lookup(mustAddr("10.1.2.3")); !ok || v != 1 {
		t.Errorf("after delete, Lookup = %v,%v; want 1,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieDeleteKeepsCoveringEntry(t *testing.T) {
	// Deleting a shorter prefix must not disturb a longer one sharing the path.
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("10.0.0.0/8"), 1)
	tr.Insert(mustPrefix("10.0.0.0/24"), 2)
	tr.Delete(mustPrefix("10.0.0.0/8"))
	if _, v, ok := tr.Lookup(mustAddr("10.0.0.5")); !ok || v != 2 {
		t.Errorf("Lookup = %v,%v; want 2,true", v, ok)
	}
	if _, _, ok := tr.Lookup(mustAddr("10.9.0.5")); ok {
		t.Error("deleted /8 still matching")
	}
}

func TestTrieDeleteLongerKeepsShorter(t *testing.T) {
	// Deleting the more-specific entry must fall traffic back to the
	// covering prefix, not to a miss.
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("10.0.0.0/8"), 1)
	tr.Insert(mustPrefix("10.0.0.0/24"), 2)
	if !tr.Delete(mustPrefix("10.0.0.0/24")) {
		t.Fatal("Delete existing /24 returned false")
	}
	if _, v, ok := tr.Lookup(mustAddr("10.0.0.5")); !ok || v != 1 {
		t.Errorf("Lookup after delete = %v,%v; want 1,true", v, ok)
	}
}

func TestTrieDeleteAllPrunesAndReinserts(t *testing.T) {
	// Emptying a shared branch must prune it completely: lookups miss, Len
	// drops to zero, Prefixes is empty, and the trie is fully reusable.
	tr := NewTrie[int]()
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "10.0.1.0/24"}
	for i, p := range ps {
		tr.Insert(mustPrefix(p), i)
	}
	for _, p := range ps {
		if !tr.Delete(mustPrefix(p)) {
			t.Fatalf("Delete(%s) returned false", p)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len after deleting all = %d", tr.Len())
	}
	if got := tr.Prefixes(); len(got) != 0 {
		t.Errorf("Prefixes after deleting all = %v", got)
	}
	if _, _, ok := tr.Lookup(mustAddr("10.0.0.1")); ok {
		t.Error("lookup matched in an emptied trie")
	}
	tr.Insert(mustPrefix("10.0.0.0/16"), 9)
	if _, v, ok := tr.Lookup(mustAddr("10.0.5.5")); !ok || v != 9 {
		t.Errorf("reinsert after full prune: Lookup = %v,%v; want 9,true", v, ok)
	}
}

func TestTrieOverwriteVisibleToLookup(t *testing.T) {
	// An overwriting insert must update what Lookup (not just Get) returns,
	// without changing Len.
	tr := NewTrie[string]()
	tr.Insert(mustPrefix("192.0.2.0/24"), "old")
	tr.Insert(mustPrefix("192.0.2.0/24"), "new")
	if _, v, ok := tr.Lookup(mustAddr("192.0.2.7")); !ok || v != "new" {
		t.Errorf("Lookup after overwrite = %q,%v; want new,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", tr.Len())
	}
	tr.Delete(mustPrefix("192.0.2.0/24"))
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d, want 0", tr.Len())
	}
}

func TestTrieDeleteDefaultRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("0.0.0.0/0"), 1)
	tr.Insert(mustPrefix("10.0.0.0/8"), 2)
	if !tr.Delete(mustPrefix("0.0.0.0/0")) {
		t.Fatal("Delete default route returned false")
	}
	if _, _, ok := tr.Lookup(mustAddr("203.0.113.9")); ok {
		t.Error("deleted default route still matching")
	}
	if _, v, ok := tr.Lookup(mustAddr("10.1.2.3")); !ok || v != 2 {
		t.Errorf("covered lookup after root delete = %v,%v; want 2,true", v, ok)
	}
}

func TestTrieWalkOrderAndEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	ps := []string{"10.0.0.0/8", "10.0.0.0/24", "192.168.0.0/16", "0.0.0.0/0"}
	for i, p := range ps {
		tr.Insert(mustPrefix(p), i)
	}
	got := tr.Prefixes()
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/24", "192.168.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("Prefixes len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != mustPrefix(want[i]) {
			t.Errorf("Prefixes[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early-stopped walk visited %d, want 2", n)
	}
}

func TestTrieUnmaskedInsert(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(netip.PrefixFrom(mustAddr("10.1.2.3"), 8), 5) // host bits set
	if v, ok := tr.Get(mustPrefix("10.0.0.0/8")); !ok || v != 5 {
		t.Errorf("unmasked insert not normalized: %v %v", v, ok)
	}
}

func TestTrieRejectsInvalidPrefixes(t *testing.T) {
	// Hostile input must never panic deep in the trie: invalid and non-IPv4
	// prefixes are rejected as no-ops at every operation.
	bad := []netip.Prefix{
		netip.MustParsePrefix("2001:db8::/32"),
		{}, // zero value
		netip.PrefixFrom(mustAddr("10.0.0.1"), 40), // bits out of range
	}
	tr := NewTrie[int]()
	tr.Insert(mustPrefix("10.0.0.0/8"), 1)
	for _, p := range bad {
		if tr.Insert(p, 9) {
			t.Errorf("Insert(%v) accepted invalid prefix", p)
		}
		if _, ok := tr.Get(p); ok {
			t.Errorf("Get(%v) matched invalid prefix", p)
		}
		if tr.Delete(p) {
			t.Errorf("Delete(%v) removed something for invalid prefix", p)
		}
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after invalid operations, want 1", tr.Len())
	}
	if _, ok := NewTrie[int]().Get(netip.MustParsePrefix("2001:db8::/32")); ok {
		t.Error("IPv6 Get on empty trie returned ok")
	}
}

func TestRIBRejectsInvalidPrefixes(t *testing.T) {
	r := NewRIB()
	v := r.Version()
	for _, p := range []netip.Prefix{{}, netip.MustParsePrefix("2001:db8::/32")} {
		if r.Install(Route{Prefix: p, Protocol: ProtoStatic}) {
			t.Errorf("Install(%v) reported a change", p)
		}
	}
	if r.Version() != v {
		t.Errorf("invalid installs moved RIB version %d -> %d", v, r.Version())
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

// linearLPM is the obviously-correct reference: scan all prefixes, pick the
// longest containing addr.
func linearLPM(prefixes []netip.Prefix, addr netip.Addr) (netip.Prefix, bool) {
	best := netip.Prefix{}
	found := false
	for _, p := range prefixes {
		if p.Contains(addr) && (!found || p.Bits() > best.Bits()) {
			best, found = p, true
		}
	}
	return best, found
}

func randomPrefix(r *rand.Rand) netip.Prefix {
	var b [4]byte
	r.Read(b[:])
	bits := r.Intn(33)
	return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
}

// Property: trie LPM agrees with the linear reference on random route tables
// and random probe addresses.
func TestQuickTrieMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		tr := NewTrie[int]()
		var prefixes []netip.Prefix
		for i := 0; i < 50; i++ {
			p := randomPrefix(rr)
			if tr.Insert(p, i) {
				prefixes = append(prefixes, p)
			}
		}
		for i := 0; i < 100; i++ {
			var ab [4]byte
			rr.Read(ab[:])
			addr := netip.AddrFrom4(ab)
			wantP, wantOK := linearLPM(prefixes, addr)
			gotP, _, gotOK := tr.Lookup(addr)
			if wantOK != gotOK {
				return false
			}
			if wantOK && wantP != gotP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Property: after random interleaved inserts and deletes, Len equals the size
// of a reference map and every remaining prefix is Get-able.
func TestQuickTrieInsertDeleteConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		tr := NewTrie[int]()
		ref := map[netip.Prefix]int{}
		for i := 0; i < 200; i++ {
			p := randomPrefix(rr)
			if rr.Intn(3) == 0 {
				delete(ref, p)
				tr.Delete(p)
			} else {
				ref[p] = i
				tr.Insert(p, i)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for p, v := range ref {
			got, ok := tr.Get(p)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}
