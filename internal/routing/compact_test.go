package routing

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"testing"

	"mfv/internal/aft"
)

// refTrie is the pre-compaction binary trie — one node per bit — kept as the
// executable reference model for the path-compressed Trie. Every quickcheck
// below drives both structures with the same operations and demands identical
// observable behavior.
type refTrie[V any] struct {
	root *refNode[V]
	size int
}

type refNode[V any] struct {
	child [2]*refNode[V]
	val   V
	set   bool
}

func newRefTrie[V any]() *refTrie[V] { return &refTrie[V]{root: &refNode[V]{}} }

func refBitAt(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-i%8)) & 1
}

func (t *refTrie[V]) Len() int { return t.size }

func (t *refTrie[V]) Insert(p netip.Prefix, val V) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := refBitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &refNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = val, true
	if added {
		t.size++
	}
	return added
}

func (t *refTrie[V]) Get(p netip.Prefix) (V, bool) {
	p, ok := checkPrefix(p)
	if !ok {
		var zero V
		return zero, false
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[refBitAt(p.Addr(), i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

func (t *refTrie[V]) Delete(p netip.Prefix) bool {
	p, ok := checkPrefix(p)
	if !ok {
		return false
	}
	path := make([]*refNode[V], 0, p.Bits()+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < p.Bits(); i++ {
		n = n.child[refBitAt(p.Addr(), i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if node.set || node.child[0] != nil || node.child[1] != nil {
			break
		}
		parent := path[i-1]
		b := refBitAt(p.Addr(), i-1)
		if parent.child[b] == node {
			parent.child[b] = nil
		}
	}
	return true
}

func (t *refTrie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	if !addr.Is4() {
		var zero V
		return netip.Prefix{}, zero, false
	}
	n := t.root
	var (
		best     V
		bestLen  = -1
		hasMatch bool
	)
	for i := 0; ; i++ {
		if n.set {
			best, bestLen, hasMatch = n.val, i, true
		}
		if i == 32 {
			break
		}
		n = n.child[refBitAt(addr, i)]
		if n == nil {
			break
		}
	}
	if !hasMatch {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return netip.PrefixFrom(addr, bestLen).Masked(), best, true
}

func (t *refTrie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	var rec func(n *refNode[V], addr [4]byte, depth int) bool
	rec = func(n *refNode[V], addr [4]byte, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			p := netip.PrefixFrom(netip.AddrFrom4(addr), depth)
			if !fn(p, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], addr, depth+1) {
			return false
		}
		addr[depth/8] |= 1 << (7 - depth%8)
		return rec(n.child[1], addr, depth+1)
	}
	rec(t.root, [4]byte{}, 0)
}

func (t *refTrie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}

// clusteredPrefix draws a masked IPv4 prefix with length biased toward the
// realistic /8../32 band and enough collisions to exercise replace/delete.
func clusteredPrefix(rng *rand.Rand) netip.Prefix {
	bits := rng.Intn(33)
	var b [4]byte
	// A narrow byte pool forces shared stems, splits, and exact collisions.
	for i := range b {
		b[i] = byte(rng.Intn(4) * 64)
	}
	return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
}

func clusteredAddr(rng *rand.Rand) netip.Addr {
	var b [4]byte
	for i := range b {
		b[i] = byte(rng.Intn(4) * 64)
	}
	return netip.AddrFrom4(b)
}

// TestQuickCompactVsReference drives the compact trie and the binary
// reference with identical random operation streams and checks every return
// value, Len, Lookup results, and the full Walk order against each other.
func TestQuickCompactVsReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		compact := NewTrie[int]()
		ref := newRefTrie[int]()
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert twice as often as the rest
				p, v := clusteredPrefix(rng), rng.Intn(1000)
				if got, want := compact.Insert(p, v), ref.Insert(p, v); got != want {
					t.Fatalf("seed %d op %d: Insert(%v) = %v, reference %v", seed, op, p, got, want)
				}
			case 2:
				p := clusteredPrefix(rng)
				if got, want := compact.Delete(p), ref.Delete(p); got != want {
					t.Fatalf("seed %d op %d: Delete(%v) = %v, reference %v", seed, op, p, got, want)
				}
			case 3:
				p := clusteredPrefix(rng)
				gv, gok := compact.Get(p)
				wv, wok := ref.Get(p)
				if gok != wok || gv != wv {
					t.Fatalf("seed %d op %d: Get(%v) = %v,%v, reference %v,%v", seed, op, p, gv, gok, wv, wok)
				}
			}
			if compact.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: Len = %d, reference %d", seed, op, compact.Len(), ref.Len())
			}
		}
		// Longest-prefix match over a spread of addresses.
		for i := 0; i < 200; i++ {
			a := clusteredAddr(rng)
			gp, gv, gok := compact.Lookup(a)
			wp, wv, wok := ref.Lookup(a)
			if gok != wok || gp != wp || gv != wv {
				t.Fatalf("seed %d: Lookup(%v) = %v,%v,%v, reference %v,%v,%v", seed, a, gp, gv, gok, wp, wv, wok)
			}
		}
		// Walk order must be byte-for-byte the reference's lexicographic
		// bit order — downstream AFT rendering depends on it.
		got, want := compact.Prefixes(), ref.Prefixes()
		if len(got) != len(want) {
			t.Fatalf("seed %d: Prefixes len = %d, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: Prefixes[%d] = %v, reference %v", seed, i, got[i], want[i])
			}
		}
	}
}

// buildAFT renders a route table into an AFT the same way the dataplane
// export does: walk order decides entry order, so a walk-order divergence
// between tries shows up as a fingerprint difference.
func buildAFT[T interface {
	Walk(fn func(p netip.Prefix, val int) bool)
}](device string, tr T) *aft.AFT {
	b := aft.NewBuilder(device)
	tr.Walk(func(p netip.Prefix, val int) bool {
		nh := b.AddNextHop(aft.NextHop{
			IPAddress: fmt.Sprintf("10.0.%d.%d", val/250, val%250+1),
			Interface: fmt.Sprintf("eth%d", val%4),
		})
		b.AddIPv4(p, b.AddGroup([]uint64{nh}), "isis", uint32(val))
		return true
	})
	return b.Build()
}

// TestQuickCompactAFTFingerprint checks the satellite acceptance bar
// directly: AFTs rendered from the compact trie are byte-identical (same
// Fingerprint) to AFTs rendered from the uncompacted reference across random
// route tables, including tables that then suffer random deletions.
func TestQuickCompactAFTFingerprint(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		compact := NewTrie[int]()
		ref := newRefTrie[int]()
		for i := 0; i < 300; i++ {
			p, v := clusteredPrefix(rng), rng.Intn(1000)
			compact.Insert(p, v)
			ref.Insert(p, v)
		}
		for i := 0; i < 100; i++ {
			p := clusteredPrefix(rng)
			compact.Delete(p)
			ref.Delete(p)
		}
		got := buildAFT("compact", compact).Fingerprint()
		want := buildAFT("compact", ref).Fingerprint()
		if got != want {
			t.Fatalf("seed %d: AFT fingerprint %s from compact trie, %s from reference", seed, got, want)
		}
	}
}

// TestCompactNodeBound checks the structural payoff: n stored prefixes cost
// at most 2n-1 nodes (plus the root), where the reference spends up to 32
// interior nodes per prefix.
func TestCompactNodeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTrie[int]()
	for i := 0; i < 5000; i++ {
		var b [4]byte
		rng.Read(b[:])
		tr.Insert(netip.PrefixFrom(netip.AddrFrom4(b), 8+rng.Intn(25)).Masked(), i)
	}
	n := tr.Len()
	count := 0
	var rec func(*trieNode[int])
	rec = func(nd *trieNode[int]) {
		if nd == nil {
			return
		}
		count++
		rec(nd.child[0])
		rec(nd.child[1])
	}
	rec(tr.root)
	if count > 2*n {
		t.Fatalf("compact trie uses %d nodes for %d prefixes; want <= %d", count, n, 2*n)
	}
}

// trieMemBytes measures live heap bytes attributable to building count
// route-table tries of size routes via build.
func trieMemBytes(b *testing.B, routes int, build func(ps []netip.Prefix) any) {
	rng := rand.New(rand.NewSource(99))
	ps := make([]netip.Prefix, 0, routes)
	for i := 0; i < routes; i++ {
		var raw [4]byte
		rng.Read(raw[:])
		ps = append(ps, netip.PrefixFrom(netip.AddrFrom4(raw), 8+rng.Intn(25)).Masked())
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := make([]any, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep = append(keep, build(ps))
	}
	b.StopTimer()
	runtime.GC()
	runtime.ReadMemStats(&after)
	live := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if live < 0 {
		live = 0
	}
	b.ReportMetric(live/float64(b.N)/float64(routes), "bytes/route")
	runtime.KeepAlive(keep)
}

// BenchmarkTrieMemory compares resident bytes per route between the compact
// trie and the uncompacted binary reference — the E13 memory-compaction
// evidence.
func BenchmarkTrieMemory(b *testing.B) {
	const routes = 20000
	b.Run("compact", func(b *testing.B) {
		trieMemBytes(b, routes, func(ps []netip.Prefix) any {
			tr := NewTrie[int]()
			for i, p := range ps {
				tr.Insert(p, i)
			}
			return tr
		})
	})
	b.Run("reference", func(b *testing.B) {
		trieMemBytes(b, routes, func(ps []netip.Prefix) any {
			tr := newRefTrie[int]()
			for i, p := range ps {
				tr.Insert(p, i)
			}
			return tr
		})
	})
}
