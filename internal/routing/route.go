package routing

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Protocol identifies the source of a route, in the sense of a router's
// "show ip route" origin column.
type Protocol uint8

// Route sources in ascending default administrative distance.
const (
	ProtoConnected Protocol = iota
	ProtoStatic
	ProtoTE // RSVP-TE tunnel route to the tail-end loopback
	ProtoEBGP
	ProtoISIS
	ProtoIBGP
	ProtoAggregate
	ProtoLocal // /32 for the interface address itself
)

// String returns the router-CLI style protocol code.
func (p Protocol) String() string {
	switch p {
	case ProtoConnected:
		return "connected"
	case ProtoStatic:
		return "static"
	case ProtoTE:
		return "te"
	case ProtoEBGP:
		return "ebgp"
	case ProtoISIS:
		return "isis"
	case ProtoIBGP:
		return "ibgp"
	case ProtoAggregate:
		return "aggregate"
	case ProtoLocal:
		return "local"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// DefaultDistance returns the administrative distance used when a config does
// not override it. Values follow the common EOS/IOS convention.
func (p Protocol) DefaultDistance() uint8 {
	switch p {
	case ProtoConnected, ProtoLocal:
		return 0
	case ProtoStatic:
		return 1
	case ProtoTE:
		return 2
	case ProtoEBGP:
		return 20
	case ProtoISIS:
		return 115
	case ProtoIBGP:
		return 200
	case ProtoAggregate:
		return 210
	default:
		return 255
	}
}

// NextHop is one element of a route's ECMP set.
type NextHop struct {
	// IP is the next-hop address; the zero Addr means the route is directly
	// attached (deliver on Interface).
	IP netip.Addr
	// Interface is the egress interface name when known. Recursive routes
	// (e.g. BGP next hops) leave it empty until FIB resolution.
	Interface string
	// LabelStack carries MPLS labels to push, outermost first.
	LabelStack []uint32
}

// String renders the next hop as "ip via intf [labels …]".
func (nh NextHop) String() string {
	var b strings.Builder
	if nh.IP.IsValid() {
		b.WriteString(nh.IP.String())
	} else {
		b.WriteString("direct")
	}
	if nh.Interface != "" {
		fmt.Fprintf(&b, " via %s", nh.Interface)
	}
	if len(nh.LabelStack) > 0 {
		fmt.Fprintf(&b, " labels %v", nh.LabelStack)
	}
	return b.String()
}

// Equal reports full next-hop equality including label stacks.
func (nh NextHop) Equal(o NextHop) bool {
	if nh.IP != o.IP || nh.Interface != o.Interface || len(nh.LabelStack) != len(o.LabelStack) {
		return false
	}
	for i := range nh.LabelStack {
		if nh.LabelStack[i] != o.LabelStack[i] {
			return false
		}
	}
	return true
}

// Route is a candidate RIB entry as installed by one protocol.
type Route struct {
	Prefix   netip.Prefix
	Protocol Protocol
	// Distance is the administrative distance; 0 is meaningful only for
	// connected/local routes, so protocols should populate it via
	// Protocol.DefaultDistance unless configured otherwise.
	Distance uint8
	// Metric is the protocol-internal metric (IGP cost, BGP MED is NOT
	// carried here — BGP arbitration happens inside the BGP engine and only
	// the winner is installed).
	Metric uint32
	// NextHops is the ECMP set, kept sorted by (IP, Interface).
	NextHops []NextHop
	// Drop marks a null/discard route (e.g. aggregate discard or static
	// Null0); such routes forward to nowhere and blackhole matching traffic.
	Drop bool
}

// SortNextHops normalizes the ECMP set ordering in place.
func (r *Route) SortNextHops() {
	sort.Slice(r.NextHops, func(i, j int) bool {
		a, b := r.NextHops[i], r.NextHops[j]
		if a.IP != b.IP {
			return a.IP.Less(b.IP)
		}
		return a.Interface < b.Interface
	})
}

// Equal reports semantic route equality (used by convergence detection).
func (r Route) Equal(o Route) bool {
	if r.Prefix != o.Prefix || r.Protocol != o.Protocol || r.Distance != o.Distance ||
		r.Metric != o.Metric || r.Drop != o.Drop || len(r.NextHops) != len(o.NextHops) {
		return false
	}
	for i := range r.NextHops {
		if !r.NextHops[i].Equal(o.NextHops[i]) {
			return false
		}
	}
	return true
}

// String renders the route in a show-ip-route-like single line.
func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v [%d/%d]", r.Protocol, r.Prefix, r.Distance, r.Metric)
	if r.Drop {
		b.WriteString(" drop")
	}
	for _, nh := range r.NextHops {
		fmt.Fprintf(&b, " -> %s", nh)
	}
	return b.String()
}
