package routing

import (
	"net/netip"
	"sort"
)

// RIB is a routing information base holding, per prefix, one candidate route
// from each protocol, and electing a winner by administrative distance (lower
// wins), then metric (lower wins), then protocol enum order as a final
// deterministic tie-break.
//
// Each protocol owns at most one candidate per prefix: protocols resolve
// their internal best-path decisions (BGP decision process, IS-IS SPF) before
// installing, matching how real RIBs receive only each protocol's winner.
//
// RIB is not safe for concurrent use; within the emulator every router's RIB
// is touched only from simulator events, which are single-threaded.
type RIB struct {
	trie *Trie[*ribEntry]
	// version increments on every effective change of any elected route. It
	// is the signal convergence detection watches.
	version uint64
	// onChange, when set, is invoked after each elected-route change with
	// the prefix affected and the new best route (nil when withdrawn).
	onChange func(p netip.Prefix, best *Route)
	// free pools ribEntry objects across churn: a full-table flap at 10k
	// routers otherwise allocates a fresh entry (plus candidate slice) per
	// prefix per cycle. Entries land here when their last candidate is
	// withdrawn and are revived by the next Install.
	free []*ribEntry
}

type ribEntry struct {
	candidates []Route // at most one per Protocol, unsorted
	best       *Route  // elected route, nil if none
	// spare keeps the previous best's allocation while the election is
	// empty so a route flap reuses it instead of allocating.
	spare *Route
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{trie: NewTrie[*ribEntry]()}
}

// OnChange registers a callback fired after every change to an elected
// route. Passing nil clears it.
func (r *RIB) OnChange(fn func(p netip.Prefix, best *Route)) { r.onChange = fn }

// Version returns a counter that increments whenever any elected route
// changes. Equal versions imply an identical elected route set.
func (r *RIB) Version() uint64 { return r.version }

// Install inserts or replaces proto's candidate for route.Prefix and reports
// whether the elected route for that prefix changed. Invalid or non-IPv4
// prefixes are rejected as a no-op: protocols screen their inputs (decode
// errors, config validation) before installing, so this guard only stops
// hostile input that slipped past them from corrupting the RIB.
func (r *RIB) Install(route Route) bool {
	if !route.Prefix.IsValid() || !route.Prefix.Addr().Is4() {
		return false
	}
	route.Prefix = route.Prefix.Masked()
	route.SortNextHops()
	e, ok := r.trie.Get(route.Prefix)
	if !ok {
		if n := len(r.free); n > 0 {
			e = r.free[n-1]
			r.free = r.free[:n-1]
		} else {
			e = &ribEntry{}
		}
		r.trie.Insert(route.Prefix, e)
	}
	replaced := false
	for i := range e.candidates {
		if e.candidates[i].Protocol == route.Protocol {
			if e.candidates[i].Equal(route) {
				return false // no-op reinstall
			}
			e.candidates[i] = route
			replaced = true
			break
		}
	}
	if !replaced {
		e.candidates = append(e.candidates, route)
	}
	return r.reelect(route.Prefix, e)
}

// Withdraw removes proto's candidate for prefix and reports whether the
// elected route changed.
func (r *RIB) Withdraw(prefix netip.Prefix, proto Protocol) bool {
	prefix = prefix.Masked()
	e, ok := r.trie.Get(prefix)
	if !ok {
		return false
	}
	found := false
	for i := range e.candidates {
		if e.candidates[i].Protocol == proto {
			e.candidates = append(e.candidates[:i], e.candidates[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	changed := r.reelect(prefix, e)
	if len(e.candidates) == 0 {
		r.trie.Delete(prefix)
		e.candidates = e.candidates[:0]
		r.free = append(r.free, e)
	}
	return changed
}

// WithdrawAll removes every candidate installed by proto, returning the
// number of prefixes whose elected route changed. Protocols use it on
// shutdown or full recomputation.
func (r *RIB) WithdrawAll(proto Protocol) int {
	var prefixes []netip.Prefix
	r.trie.Walk(func(p netip.Prefix, e *ribEntry) bool {
		for _, c := range e.candidates {
			if c.Protocol == proto {
				prefixes = append(prefixes, p)
				break
			}
		}
		return true
	})
	changed := 0
	for _, p := range prefixes {
		if r.Withdraw(p, proto) {
			changed++
		}
	}
	return changed
}

func (r *RIB) reelect(prefix netip.Prefix, e *ribEntry) bool {
	var best *Route
	for i := range e.candidates {
		c := &e.candidates[i]
		if best == nil || less(c, best) {
			best = c
		}
	}
	switch {
	case best == nil && e.best == nil:
		return false
	case best != nil && e.best != nil && best.Equal(*e.best):
		return false
	}
	if best == nil {
		e.spare, e.best = e.best, nil
	} else {
		if e.best == nil {
			if e.spare != nil {
				e.best, e.spare = e.spare, nil
			} else {
				e.best = new(Route)
			}
		}
		// Callers only ever see value copies of the elected route (Get,
		// Routes, Lookup dereference), so reusing the storage is invisible.
		*e.best = *best
	}
	r.version++
	if r.onChange != nil {
		r.onChange(prefix, e.best)
	}
	return true
}

// less orders candidate routes: lower admin distance, then lower metric,
// then lower protocol number for determinism.
func less(a, b *Route) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	return a.Protocol < b.Protocol
}

// Lookup performs longest-prefix match over elected routes.
func (r *RIB) Lookup(addr netip.Addr) (Route, bool) {
	// The trie may contain entries whose election is currently empty (all
	// candidates withdrawn but entry retained mid-update); walk up from the
	// longest match.
	n := addr
	for bits := 32; bits >= 0; bits-- {
		p := netip.PrefixFrom(n, bits).Masked()
		if e, ok := r.trie.Get(p); ok && e.best != nil && p.Contains(addr) {
			return *e.best, true
		}
	}
	return Route{}, false
}

// Get returns the elected route for exactly prefix.
func (r *RIB) Get(prefix netip.Prefix) (Route, bool) {
	e, ok := r.trie.Get(prefix.Masked())
	if !ok || e.best == nil {
		return Route{}, false
	}
	return *e.best, true
}

// Candidates returns all candidates for prefix, for CLI-style inspection.
func (r *RIB) Candidates(prefix netip.Prefix) []Route {
	e, ok := r.trie.Get(prefix.Masked())
	if !ok {
		return nil
	}
	out := make([]Route, len(e.candidates))
	copy(out, e.candidates)
	sort.Slice(out, func(i, j int) bool { return less(&out[i], &out[j]) })
	return out
}

// Routes returns every elected route sorted by prefix bit order.
func (r *RIB) Routes() []Route {
	var out []Route
	r.trie.Walk(func(_ netip.Prefix, e *ribEntry) bool {
		if e.best != nil {
			out = append(out, *e.best)
		}
		return true
	})
	return out
}

// Len returns the number of prefixes with an elected route.
func (r *RIB) Len() int {
	n := 0
	r.trie.Walk(func(_ netip.Prefix, e *ribEntry) bool {
		if e.best != nil {
			n++
		}
		return true
	})
	return n
}
